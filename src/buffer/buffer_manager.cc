#include "buffer/buffer_manager.h"

#include <algorithm>
#include <chrono>
#include <set>
#include <utility>

#include "obs/kcpq_metrics.h"
#include "obs/trace.h"

namespace kcpq {

namespace internal {

/// One thread's counters for one buffer instance. Atomics because an
/// aggregating thread (AggregateStats) reads them while the owner thread
/// increments; all accesses are relaxed — per-counter exactness is all
/// the consumers need, not cross-counter snapshots.
struct BufferTlsCounters {
  explicit BufferTlsCounters(uint64_t id) : instance_id(id) {}
  const uint64_t instance_id;
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> writebacks{0};
  std::atomic<uint64_t> prefetch_issued{0};
  std::atomic<uint64_t> prefetch_hits{0};
  std::atomic<uint64_t> prefetch_wasted{0};

  BufferStats Load() const {
    BufferStats s;
    s.hits = hits.load(std::memory_order_relaxed);
    s.misses = misses.load(std::memory_order_relaxed);
    s.evictions = evictions.load(std::memory_order_relaxed);
    s.writebacks = writebacks.load(std::memory_order_relaxed);
    s.prefetch_issued = prefetch_issued.load(std::memory_order_relaxed);
    s.prefetch_hits = prefetch_hits.load(std::memory_order_relaxed);
    s.prefetch_wasted = prefetch_wasted.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace internal

namespace {

using internal::BufferTlsCounters;

/// Monotone instance-id source: ids are never reused, so a thread-local
/// table keyed by id can never confuse a dead buffer with a new one that
/// happens to land at the same address.
std::atomic<uint64_t> next_instance_id{1};

void FoldInto(BufferStats& into, const BufferStats& s) {
  into.hits += s.hits;
  into.misses += s.misses;
  into.evictions += s.evictions;
  into.writebacks += s.writebacks;
  into.prefetch_issued += s.prefetch_issued;
  into.prefetch_hits += s.prefetch_hits;
  into.prefetch_wasted += s.prefetch_wasted;
}

struct ThreadTable;

/// Global view of every thread's per-buffer tables, so AggregateStats can
/// sum contributions across threads — including threads that already
/// exited, whose counts fold into `retired` from the ThreadTable dtor.
/// Lock order: registry mu before any table mu.
struct ThreadStatsRegistry {
  std::mutex mu;
  std::set<ThreadTable*> live;
  std::unordered_map<uint64_t, BufferStats> retired;  // by instance id

  static ThreadStatsRegistry& Get() {
    // Leaked: thread_local destructors may run after static destructors.
    static ThreadStatsRegistry* instance = new ThreadStatsRegistry();
    return *instance;
  }
};

/// One thread's table of per-buffer counters. The entries vector is
/// append-only and guarded by `mu` so an aggregator can walk it; the
/// owner thread scans without the lock (only the owner mutates the
/// vector, and it appends under the lock). Counter slots are heap
/// allocations so their addresses survive vector growth. Entries are tiny
/// and never removed; a process would have to churn through millions of
/// BufferManager instances on one thread for the table to matter.
struct ThreadTable {
  std::mutex mu;
  std::vector<std::unique_ptr<BufferTlsCounters>> entries;

  ThreadTable() {
    ThreadStatsRegistry& reg = ThreadStatsRegistry::Get();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.live.insert(this);
  }

  ~ThreadTable() {
    // Retire this thread's counts so aggregate views keep seeing them.
    ThreadStatsRegistry& reg = ThreadStatsRegistry::Get();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.live.erase(this);
    for (const auto& e : entries) {
      FoldInto(reg.retired[e->instance_id], e->Load());
    }
  }

  BufferTlsCounters& For(uint64_t instance_id) {
    for (const auto& e : entries) {
      if (e->instance_id == instance_id) return *e;
    }
    std::lock_guard<std::mutex> lock(mu);
    entries.push_back(std::make_unique<BufferTlsCounters>(instance_id));
    return *entries.back();
  }
};

thread_local ThreadTable tls_table;

}  // namespace

BufferManager::BufferManager(StorageManager* storage, size_t capacity_pages,
                             std::unique_ptr<ReplacementPolicy> policy)
    : storage_(storage),
      capacity_(capacity_pages),
      instance_id_(next_instance_id.fetch_add(1, std::memory_order_relaxed)) {
  auto shard = std::make_unique<Shard>();
  shard->policy = std::move(policy);
  shard->capacity = capacity_pages;
  shards_.push_back(std::move(shard));
}

BufferManager::BufferManager(
    StorageManager* storage, size_t capacity_pages, size_t shards,
    const std::function<std::unique_ptr<ReplacementPolicy>()>& policy_factory)
    : storage_(storage),
      capacity_(capacity_pages),
      instance_id_(next_instance_id.fetch_add(1, std::memory_order_relaxed)) {
  const size_t n = std::max<size_t>(shards, 1);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->policy = policy_factory();
    // Even split; the first capacity % n shards take the remainder.
    shard->capacity = capacity_pages / n + (i < capacity_pages % n ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

BufferManager::~BufferManager() {
  // Settle speculation first: completion callbacks capture `this`, so the
  // buffer must not die while reads are in flight.
  if (prefetch_active_.load(std::memory_order_relaxed)) DrainPrefetches();
  // Best effort; callers that care about durability call Flush themselves.
  Flush();
}

internal::BufferTlsCounters& BufferManager::Tls() const {
  return tls_table.For(instance_id_);
}

void BufferManager::CountHit() {
  hits_.fetch_add(1, std::memory_order_relaxed);
  Tls().hits.fetch_add(1, std::memory_order_relaxed);
  KCPQ_METRIC_INC(obs::KcpqMetrics::Get().buffer_hits_total);
}

void BufferManager::CountMiss() {
  misses_.fetch_add(1, std::memory_order_relaxed);
  Tls().misses.fetch_add(1, std::memory_order_relaxed);
  KCPQ_METRIC_INC(obs::KcpqMetrics::Get().buffer_misses_total);
}

void BufferManager::CountPrefetchIssued() {
  prefetch_issued_.fetch_add(1, std::memory_order_relaxed);
  Tls().prefetch_issued.fetch_add(1, std::memory_order_relaxed);
  KCPQ_METRIC_INC(obs::KcpqMetrics::Get().prefetch_issued_total);
}

void BufferManager::CountPrefetchHit() {
  prefetch_hits_.fetch_add(1, std::memory_order_relaxed);
  Tls().prefetch_hits.fetch_add(1, std::memory_order_relaxed);
  KCPQ_METRIC_INC(obs::KcpqMetrics::Get().prefetch_hits_total);
}

void BufferManager::CountPrefetchWasted() {
  prefetch_wasted_.fetch_add(1, std::memory_order_relaxed);
  Tls().prefetch_wasted.fetch_add(1, std::memory_order_relaxed);
  KCPQ_METRIC_INC(obs::KcpqMetrics::Get().prefetch_wasted_total);
}

namespace {

/// Wraps a physical read in an io_wait trace span when the query asked
/// for tracing; otherwise forwards with zero added work.
Status TracedStorageRead(StorageManager* storage, PageId id, Page* out,
                         QueryContext* ctx) {
  obs::TraceBuffer* trace = ctx != nullptr ? ctx->trace() : nullptr;
  if (trace == nullptr) return storage->ReadPage(id, out, ctx);
  obs::TraceEvent e;
  e.kind = obs::TraceEventKind::kIoWait;
  e.a = id;
  e.ts_ns = trace->NowNs();
  Status s = storage->ReadPage(id, out, ctx);
  uint64_t end = trace->NowNs();
  e.dur_ns = end > e.ts_ns ? end - e.ts_ns : 1;
  trace->Record(e);
  // Only traced queries pay for read timing, so the histogram samples
  // traced traffic; untraced hot paths never touch the clock.
  KCPQ_METRIC_OBSERVE(obs::KcpqMetrics::Get().io_read_wait_seconds,
                      static_cast<double>(e.dur_ns) * 1e-9);
  return s;
}

}  // namespace

Status BufferManager::Read(PageId id, Page* out, QueryContext* ctx) {
  if (ctx != nullptr) ctx->OnPageRead(instance_id_, id, storage_->page_size());
  // A miss always counts as a disk access (the paper's metric) whether the
  // page then arrives via a claimed prefetch or a synchronous read — the
  // speculative read replaced exactly that physical access.
  if (capacity_ == 0) {
    CountMiss();
    if (prefetch_active_.load(std::memory_order_relaxed) &&
        ClaimPrefetched(id, out, ctx)) {
      return Status::OK();
    }
    return TracedStorageRead(storage_, id, out, ctx);
  }
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it != shard.frames.end()) {
    CountHit();
    shard.policy->OnAccess(id);
    *out = it->second.page;
    return Status::OK();
  }
  // Miss: fetch under the shard lock, so concurrent readers of the same
  // page trigger exactly one storage read per residency.
  CountMiss();
  Page page;
  if (!(prefetch_active_.load(std::memory_order_relaxed) &&
        ClaimPrefetched(id, &page, ctx))) {
    KCPQ_RETURN_IF_ERROR(TracedStorageRead(storage_, id, &page, ctx));
  }
  KCPQ_RETURN_IF_ERROR(EvictIfFull(shard));
  shard.policy->OnInsert(id);
  *out = page;
  shard.frames.emplace(id, Frame{std::move(page), /*dirty=*/false});
  return Status::OK();
}

Status BufferManager::Write(PageId id, const Page& page) {
  if (capacity_ == 0) {
    return storage_->WritePage(id, page);
  }
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it != shard.frames.end()) {
    shard.policy->OnAccess(id);
    it->second.page = page;
    it->second.dirty = true;
    return Status::OK();
  }
  KCPQ_RETURN_IF_ERROR(EvictIfFull(shard));
  shard.policy->OnInsert(id);
  shard.frames.emplace(id, Frame{page, /*dirty=*/true});
  return Status::OK();
}

size_t BufferManager::Prefetch(const PageId* ids, size_t count,
                               QueryContext* ctx) {
  if (count == 0) return 0;
  prefetch_active_.store(true, std::memory_order_relaxed);
  std::vector<PageId> accepted;
  accepted.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const PageId id = ids[i];
    if (capacity_ > 0) {
      Shard& shard = ShardFor(id);
      std::lock_guard<std::mutex> shard_lock(shard.mu);
      // Already resident: a speculative read would be pure waste. (The
      // page may still be evicted before the demand read arrives; that
      // just costs the synchronous read it would have cost anyway.)
      if (shard.frames.count(id) > 0) continue;
    }
    {
      std::lock_guard<std::mutex> lock(prefetch_.mu);
      if (prefetch_.entries.size() >= prefetch_.capacity) break;
      // Duplicate of a staged or in-flight read: coalesce.
      auto [eit, inserted] = prefetch_.entries.emplace(id, PrefetchEntry{});
      if (!inserted) continue;
      // The issuer pays for the page below; a claim by a different query
      // credits it back (ReleaseIssuerLocked).
      eit->second.issuer = ctx;
      ++prefetch_.inflight;
      const auto inflight = static_cast<uint64_t>(prefetch_.inflight);
      if (inflight > prefetch_inflight_peak_.load(std::memory_order_relaxed)) {
        prefetch_inflight_peak_.store(inflight, std::memory_order_relaxed);
      }
      KCPQ_METRIC_SET_MAX(obs::KcpqMetrics::Get().prefetch_inflight_peak,
                          inflight);
    }
    // Charge speculation to the query at issue time, on the query's own
    // thread (contexts are single-threaded; completions run on I/O
    // threads). The charge dedups with any later demand read of the page.
    if (ctx != nullptr) {
      ctx->OnPageRead(instance_id_, id, storage_->page_size());
    }
    CountPrefetchIssued();
    accepted.push_back(id);
  }
  if (!accepted.empty()) {
    storage_->ReadPagesAsync(
        accepted.data(), accepted.size(),
        [this](AsyncPageRead done) { OnPrefetchComplete(std::move(done)); });
  }
  return accepted.size();
}

void BufferManager::OnPrefetchComplete(AsyncPageRead done) {
  bool wasted = false;
  std::vector<Waker> waiters;
  {
    std::lock_guard<std::mutex> lock(prefetch_.mu);
    auto it = prefetch_.entries.find(done.id);
    if (it == prefetch_.entries.end()) return;  // unreachable by protocol
    PrefetchEntry& entry = it->second;
    const bool demand = entry.demand;
    if (entry.abandoned || (!done.status.ok() && !demand)) {
      // Unwanted or failed speculation: discard. A demand read of a
      // failed page retries synchronously through the full decorator
      // stack, so faults surface exactly as they do without prefetch.
      // (Abandoned demand fetches are dropped the same way; their woken
      // waiters re-issue fresh.)
      waiters = std::move(entry.waiters);
      prefetch_.entries.erase(it);
      wasted = !demand;
    } else {
      // A failed *demand* fetch stages its error instead: the first
      // claimer takes it as its read's result, matching the blocking
      // path's failed synchronous read.
      entry.ready = true;
      entry.status = done.status;
      entry.page = std::move(done.page);
      waiters = std::move(entry.waiters);
    }
  }
  if (wasted) CountPrefetchWasted();
  // Wake parked tasks outside the area lock (wakers take scheduler
  // locks), but before the inflight decrement below: the buffer is
  // guaranteed alive until a drain observes inflight == 0.
  for (const Waker& waker : waiters) waker();
  // Last touch, and deliberately under the lock: a drain (possibly the
  // destructor) woken by this decrement may free the buffer the moment it
  // observes inflight == 0, so nothing may run on this thread afterwards
  // except releasing the mutex.
  {
    std::lock_guard<std::mutex> lock(prefetch_.mu);
    --prefetch_.inflight;
    prefetch_.cv.notify_all();
  }
}

bool BufferManager::ClaimPrefetched(PageId id, Page* out, QueryContext* ctx) {
  obs::TraceBuffer* trace = ctx != nullptr ? ctx->trace() : nullptr;
  const uint64_t start_ns = trace != nullptr ? trace->NowNs() : 0;
  bool speculative = true;
  std::vector<Waker> waiters;
  {
    std::unique_lock<std::mutex> lock(prefetch_.mu);
    auto it = prefetch_.entries.find(id);
    if (it == prefetch_.entries.end()) return false;
    if (!it->second.ready) {
      // In flight: wait for the completion. The caller may hold its shard
      // lock; completions only ever take prefetch mu, so this cannot
      // deadlock — and the wait is never longer than the synchronous read
      // it replaces.
      prefetch_.cv.wait(lock, [&] {
        auto i = prefetch_.entries.find(id);
        return i == prefetch_.entries.end() || i->second.ready;
      });
      it = prefetch_.entries.find(id);
      if (it == prefetch_.entries.end()) return false;  // speculation failed
    }
    const bool failed = !it->second.status.ok();
    if (!failed) {
      speculative = !it->second.demand;
      ReleaseIssuerLocked(it->second, ctx);
      *out = std::move(it->second.page);
    }
    waiters = std::move(it->second.waiters);
    prefetch_.entries.erase(it);
    if (failed) {
      // A demand fetch that failed: drop it and retry synchronously, the
      // same recovery a failed speculative read gets. (Waiters fire
      // below, outside the lock, and re-issue fresh.)
      lock.unlock();
      for (const Waker& waker : waiters) waker();
      return false;
    }
  }
  // Parked tasks waiting on the entry re-run their TryRead: the claimer's
  // caller is about to make the page resident (or, at capacity 0, they
  // re-issue their own fetch).
  for (const Waker& waker : waiters) waker();
  if (!speculative) return true;
  CountPrefetchHit();
  if (trace != nullptr) {
    // The io_overlap span is the residual wait a demand read paid for an
    // overlapped page — the counterpart of the io_wait span a synchronous
    // read records.
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kIoOverlap;
    e.a = id;
    e.ts_ns = start_ns;
    const uint64_t end_ns = trace->NowNs();
    e.dur_ns = end_ns > start_ns ? end_ns - start_ns : 1;
    trace->Record(e);
  }
  return true;
}

void BufferManager::ReleaseIssuerLocked(const PrefetchEntry& entry,
                                        QueryContext* claimer) {
  if (entry.issuer != nullptr && entry.issuer != claimer) {
    entry.issuer->accountant().ReleaseForeignBufferBytes(
        storage_->page_size());
  }
}

void BufferManager::StartDemandFetchLocked(PageId id, const Waker& waker) {
  // The drain/abandon machinery must now run even if Prefetch was never
  // called: demand entries live in the same area.
  prefetch_active_.store(true, std::memory_order_relaxed);
  auto [it, inserted] = prefetch_.entries.emplace(id, PrefetchEntry{});
  (void)inserted;  // caller verified no entry exists
  it->second.demand = true;
  it->second.waiters.push_back(waker);
  // Counts toward inflight (drains wait for it) but not toward the
  // speculation peak gauge: it is a demand read in flight, not
  // speculation.
  ++prefetch_.inflight;
}

void BufferManager::IssueDemandFetch(PageId id) {
  storage_->ReadPagesAsync(
      &id, 1,
      [this](AsyncPageRead done) { OnPrefetchComplete(std::move(done)); });
}

Status BufferManager::TryRead(PageId id, Page* out, QueryContext* ctx,
                              const Waker& waker, TryReadOutcome* outcome) {
  *outcome = TryReadOutcome{};
  if (ctx != nullptr) ctx->OnPageRead(instance_id_, id, storage_->page_size());
  bool issue = false;
  bool served = false;
  bool prefetch_claim = false;
  Status result;
  std::vector<Waker> waiters;
  if (capacity_ == 0) {
    // Pass-through: every serve is a miss (the paper's zero-buffer
    // setting). Concurrent parkers coalesce on one fetch, but only the
    // first re-runner claims it — later ones find no entry and re-issue,
    // so each query still pays one miss per read, exactly like blocking
    // pass-through reads.
    {
      std::lock_guard<std::mutex> lock(prefetch_.mu);
      auto it = prefetch_.entries.find(id);
      if (it == prefetch_.entries.end()) {
        StartDemandFetchLocked(id, waker);
        issue = true;
      } else if (!it->second.ready) {
        it->second.waiters.push_back(waker);
      } else {
        served = true;
        result = it->second.status;
        if (result.ok()) {
          prefetch_claim = !it->second.demand;
          ReleaseIssuerLocked(it->second, ctx);
          *out = std::move(it->second.page);
        }
        waiters = std::move(it->second.waiters);
        prefetch_.entries.erase(it);
      }
    }
    for (const Waker& w : waiters) w();
    if (issue) IssueDemandFetch(id);
    if (!served) {
      outcome->parked = true;
      return Status::OK();
    }
    CountMiss();
    outcome->prefetch_claim = prefetch_claim;
    if (prefetch_claim) CountPrefetchHit();
    return result;
  }
  Shard& shard = ShardFor(id);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto fit = shard.frames.find(id);
    if (fit != shard.frames.end()) {
      CountHit();
      shard.policy->OnAccess(id);
      *out = fit->second.page;
      outcome->hit = true;
      return Status::OK();
    }
    // Non-resident: consult the staging area (shard mu -> prefetch mu is
    // the legal lock order).
    bool claimed = false;
    Page page;
    {
      std::lock_guard<std::mutex> alock(prefetch_.mu);
      auto it = prefetch_.entries.find(id);
      if (it == prefetch_.entries.end()) {
        StartDemandFetchLocked(id, waker);
        issue = true;
      } else if (!it->second.ready) {
        it->second.waiters.push_back(waker);
      } else {
        served = true;
        result = it->second.status;
        if (result.ok()) {
          claimed = true;
          prefetch_claim = !it->second.demand;
          ReleaseIssuerLocked(it->second, ctx);
          page = std::move(it->second.page);
        }
        waiters = std::move(it->second.waiters);
        prefetch_.entries.erase(it);
      }
    }
    if (claimed) {
      // The claim is this query's demand miss: counted and inserted
      // through the same eviction path as a blocking miss, so the
      // replacement policy sees the identical history. Parked waiters on
      // the erased entry re-run and find the page resident (a hit) —
      // matching the blocking path, where threads queued on the shard
      // mutex during the fetch hit the fresh frame.
      CountMiss();
      outcome->prefetch_claim = prefetch_claim;
      if (prefetch_claim) CountPrefetchHit();
      result = EvictIfFull(shard);
      if (result.ok()) {
        shard.policy->OnInsert(id);
        *out = page;
        shard.frames.emplace(id, Frame{std::move(page), /*dirty=*/false});
      }
    } else if (served) {
      // Failed fetch: the access still counts, like a failed synchronous
      // read on the blocking path.
      CountMiss();
    }
  }
  for (const Waker& w : waiters) w();
  if (issue) IssueDemandFetch(id);
  if (!served) {
    outcome->parked = true;
    return Status::OK();
  }
  return result;
}

void BufferManager::DrainPrefetches() {
  size_t dropped = 0;
  std::vector<Waker> waiters;
  {
    std::unique_lock<std::mutex> lock(prefetch_.mu);
    prefetch_.cv.wait(lock, [&] { return prefetch_.inflight == 0; });
    for (auto& [id, entry] : prefetch_.entries) {
      // Only speculation counts as waste; dropped demand entries were
      // never issued/hit/wasted-accounted. Waiters (none in steady state
      // — completions fire them — but possible on teardown races) are
      // woken so no task sleeps forever.
      if (!entry.demand) ++dropped;
      for (Waker& waker : entry.waiters) waiters.push_back(std::move(waker));
    }
    prefetch_.entries.clear();
  }
  for (size_t i = 0; i < dropped; ++i) CountPrefetchWasted();
  for (const Waker& waker : waiters) waker();
}

void BufferManager::set_prefetch_capacity(size_t pages) {
  std::lock_guard<std::mutex> lock(prefetch_.mu);
  prefetch_.capacity = pages;
}

size_t BufferManager::prefetch_inflight() const {
  std::lock_guard<std::mutex> lock(prefetch_.mu);
  return prefetch_.inflight;
}

size_t BufferManager::prefetch_staged() const {
  std::lock_guard<std::mutex> lock(prefetch_.mu);
  return prefetch_.entries.size() - prefetch_.inflight;
}

uint64_t BufferManager::prefetch_inflight_peak() const {
  return prefetch_inflight_peak_.load(std::memory_order_relaxed);
}

Result<PageId> BufferManager::Allocate() { return storage_->Allocate(); }

Status BufferManager::Free(PageId id) {
  {
    Shard& shard = ShardFor(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      shard.policy->OnErase(id);
      shard.frames.erase(it);
    }
  }
  if (prefetch_active_.load(std::memory_order_relaxed)) {
    // A freed page's speculative read must never be claimed: drop a staged
    // copy, abandon an in-flight one (its completion becomes waste and
    // wakes any parked tasks, which re-issue and surface the freed-page
    // error through the normal fetch path).
    bool wasted = false;
    std::vector<Waker> waiters;
    {
      std::lock_guard<std::mutex> lock(prefetch_.mu);
      auto it = prefetch_.entries.find(id);
      if (it != prefetch_.entries.end()) {
        if (it->second.ready) {
          wasted = !it->second.demand;
          waiters = std::move(it->second.waiters);
          prefetch_.entries.erase(it);
        } else {
          it->second.abandoned = true;
        }
      }
    }
    if (wasted) CountPrefetchWasted();
    for (const Waker& waker : waiters) waker();
  }
  return storage_->Free(id);
}

Status BufferManager::EvictIfFull(Shard& shard) {
  // The empty check matters when capacity_pages < shards leaves this
  // shard with capacity 0: there is no victim to choose, and the caller
  // is about to insert — such a shard holds exactly its most recent page.
  if (shard.frames.size() < shard.capacity || shard.frames.empty()) {
    return Status::OK();
  }
  const PageId victim = shard.policy->ChooseVictim();
  auto it = shard.frames.find(victim);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  Tls().evictions.fetch_add(1, std::memory_order_relaxed);
  KCPQ_METRIC_INC(obs::KcpqMetrics::Get().buffer_evictions_total);
  if (it->second.dirty) {
    writebacks_.fetch_add(1, std::memory_order_relaxed);
    Tls().writebacks.fetch_add(1, std::memory_order_relaxed);
    KCPQ_METRIC_INC(obs::KcpqMetrics::Get().buffer_writebacks_total);
    KCPQ_RETURN_IF_ERROR(storage_->WritePage(victim, it->second.page));
  }
  shard.frames.erase(it);
  return Status::OK();
}

Status BufferManager::Flush() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& [id, frame] : shard->frames) {
      if (!frame.dirty) continue;
      writebacks_.fetch_add(1, std::memory_order_relaxed);
      Tls().writebacks.fetch_add(1, std::memory_order_relaxed);
      KCPQ_METRIC_INC(obs::KcpqMetrics::Get().buffer_writebacks_total);
      KCPQ_RETURN_IF_ERROR(storage_->WritePage(id, frame.page));
      frame.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferManager::FlushAndClear() {
  KCPQ_RETURN_IF_ERROR(Flush());
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [id, frame] : shard->frames) shard->policy->OnErase(id);
    shard->frames.clear();
  }
  if (prefetch_active_.load(std::memory_order_relaxed)) {
    // Cold cache means cold speculation too: drop staged pages, abandon
    // in-flight ones (without waiting — their completions become waste).
    size_t dropped = 0;
    std::vector<Waker> waiters;
    {
      std::lock_guard<std::mutex> lock(prefetch_.mu);
      for (auto it = prefetch_.entries.begin();
           it != prefetch_.entries.end();) {
        if (it->second.ready) {
          if (!it->second.demand) ++dropped;
          for (Waker& waker : it->second.waiters) {
            waiters.push_back(std::move(waker));
          }
          it = prefetch_.entries.erase(it);
        } else {
          it->second.abandoned = true;
          ++it;
        }
      }
    }
    for (size_t i = 0; i < dropped; ++i) CountPrefetchWasted();
    for (const Waker& waker : waiters) waker();
  }
  return Status::OK();
}

size_t BufferManager::resident() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->frames.size();
  }
  return total;
}

BufferStats BufferManager::stats() const {
  BufferStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.writebacks = writebacks_.load(std::memory_order_relaxed);
  s.prefetch_issued = prefetch_issued_.load(std::memory_order_relaxed);
  s.prefetch_hits = prefetch_hits_.load(std::memory_order_relaxed);
  s.prefetch_wasted = prefetch_wasted_.load(std::memory_order_relaxed);
  return s;
}

BufferStats BufferManager::ThreadStats() const { return Tls().Load(); }

BufferStats BufferManager::AggregateStats() const {
  ThreadStatsRegistry& reg = ThreadStatsRegistry::Get();
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  BufferStats total;
  if (auto it = reg.retired.find(instance_id_); it != reg.retired.end()) {
    total = it->second;
  }
  for (ThreadTable* table : reg.live) {
    std::lock_guard<std::mutex> table_lock(table->mu);
    for (const auto& e : table->entries) {
      if (e->instance_id != instance_id_) continue;
      FoldInto(total, e->Load());
    }
  }
  return total;
}

void BufferManager::ResetStats() {
  // Resets the global counters only. Thread-local views are monotone and
  // cannot be reset across threads; per-query accounting diffs them
  // (before/after), which is reset-agnostic.
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  writebacks_.store(0, std::memory_order_relaxed);
  prefetch_issued_.store(0, std::memory_order_relaxed);
  prefetch_hits_.store(0, std::memory_order_relaxed);
  prefetch_wasted_.store(0, std::memory_order_relaxed);
  prefetch_inflight_peak_.store(0, std::memory_order_relaxed);
}

}  // namespace kcpq
