#include "buffer/buffer_manager.h"

namespace kcpq {

BufferManager::BufferManager(StorageManager* storage, size_t capacity_pages,
                             std::unique_ptr<ReplacementPolicy> policy)
    : storage_(storage),
      capacity_(capacity_pages),
      policy_(std::move(policy)) {}

BufferManager::~BufferManager() {
  // Best effort; callers that care about durability call Flush themselves.
  Flush();
}

Status BufferManager::Read(PageId id, Page* out) {
  if (capacity_ == 0) {
    ++stats_.misses;
    return storage_->ReadPage(id, out);
  }
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++stats_.hits;
    policy_->OnAccess(id);
    *out = it->second.page;
    return Status::OK();
  }
  ++stats_.misses;
  Page page;
  KCPQ_RETURN_IF_ERROR(storage_->ReadPage(id, &page));
  KCPQ_RETURN_IF_ERROR(EvictIfFull());
  policy_->OnInsert(id);
  *out = page;
  frames_.emplace(id, Frame{std::move(page), /*dirty=*/false});
  return Status::OK();
}

Status BufferManager::Write(PageId id, const Page& page) {
  if (capacity_ == 0) {
    return storage_->WritePage(id, page);
  }
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    policy_->OnAccess(id);
    it->second.page = page;
    it->second.dirty = true;
    return Status::OK();
  }
  KCPQ_RETURN_IF_ERROR(EvictIfFull());
  policy_->OnInsert(id);
  frames_.emplace(id, Frame{page, /*dirty=*/true});
  return Status::OK();
}

Result<PageId> BufferManager::Allocate() { return storage_->Allocate(); }

Status BufferManager::Free(PageId id) {
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    policy_->OnErase(id);
    frames_.erase(it);
  }
  return storage_->Free(id);
}

Status BufferManager::EvictIfFull() {
  if (frames_.size() < capacity_) return Status::OK();
  const PageId victim = policy_->ChooseVictim();
  auto it = frames_.find(victim);
  ++stats_.evictions;
  if (it->second.dirty) {
    ++stats_.writebacks;
    KCPQ_RETURN_IF_ERROR(storage_->WritePage(victim, it->second.page));
  }
  frames_.erase(it);
  return Status::OK();
}

Status BufferManager::Flush() {
  for (auto& [id, frame] : frames_) {
    if (!frame.dirty) continue;
    ++stats_.writebacks;
    KCPQ_RETURN_IF_ERROR(storage_->WritePage(id, frame.page));
    frame.dirty = false;
  }
  return Status::OK();
}

Status BufferManager::FlushAndClear() {
  KCPQ_RETURN_IF_ERROR(Flush());
  for (const auto& [id, frame] : frames_) policy_->OnErase(id);
  frames_.clear();
  return Status::OK();
}

}  // namespace kcpq
