#include "buffer/buffer_manager.h"

#include <algorithm>

namespace kcpq {

namespace {

/// Monotone instance-id source: ids are never reused, so a thread-local
/// table keyed by id can never confuse a dead buffer with a new one that
/// happens to land at the same address.
std::atomic<uint64_t> next_instance_id{1};

/// One thread's per-buffer stats. A flat vector with linear search beats a
/// hash map here: a thread touches a handful of buffers, and the common
/// case (repeat access to the same buffer) hits slot 0 of an MRU-ordered
/// scan. Entries are tiny and never removed; a process would have to churn
/// through millions of BufferManager instances on one thread for the table
/// to matter.
struct TlsEntry {
  uint64_t instance_id = 0;
  BufferStats stats;
};
thread_local std::vector<TlsEntry> tls_table;

}  // namespace

BufferManager::BufferManager(StorageManager* storage, size_t capacity_pages,
                             std::unique_ptr<ReplacementPolicy> policy)
    : storage_(storage),
      capacity_(capacity_pages),
      instance_id_(next_instance_id.fetch_add(1, std::memory_order_relaxed)) {
  auto shard = std::make_unique<Shard>();
  shard->policy = std::move(policy);
  shard->capacity = capacity_pages;
  shards_.push_back(std::move(shard));
}

BufferManager::BufferManager(
    StorageManager* storage, size_t capacity_pages, size_t shards,
    const std::function<std::unique_ptr<ReplacementPolicy>()>& policy_factory)
    : storage_(storage),
      capacity_(capacity_pages),
      instance_id_(next_instance_id.fetch_add(1, std::memory_order_relaxed)) {
  const size_t n = std::max<size_t>(shards, 1);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->policy = policy_factory();
    // Even split; the first capacity % n shards take the remainder.
    shard->capacity = capacity_pages / n + (i < capacity_pages % n ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

BufferManager::~BufferManager() {
  // Best effort; callers that care about durability call Flush themselves.
  Flush();
}

BufferStats& BufferManager::Tls() const {
  for (size_t i = 0; i < tls_table.size(); ++i) {
    if (tls_table[i].instance_id == instance_id_) {
      // Move-to-front so a thread's current buffer is found in one probe.
      if (i != 0) std::swap(tls_table[i], tls_table[0]);
      return tls_table[0].stats;
    }
  }
  tls_table.insert(tls_table.begin(), TlsEntry{instance_id_, BufferStats{}});
  return tls_table[0].stats;
}

void BufferManager::CountHit() {
  hits_.fetch_add(1, std::memory_order_relaxed);
  ++Tls().hits;
}

void BufferManager::CountMiss() {
  misses_.fetch_add(1, std::memory_order_relaxed);
  ++Tls().misses;
}

Status BufferManager::Read(PageId id, Page* out, QueryContext* ctx) {
  if (ctx != nullptr) ctx->OnPageRead(instance_id_, id, storage_->page_size());
  if (capacity_ == 0) {
    CountMiss();
    return storage_->ReadPage(id, out, ctx);
  }
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it != shard.frames.end()) {
    CountHit();
    shard.policy->OnAccess(id);
    *out = it->second.page;
    return Status::OK();
  }
  // Miss: fetch under the shard lock, so concurrent readers of the same
  // page trigger exactly one storage read per residency.
  CountMiss();
  Page page;
  KCPQ_RETURN_IF_ERROR(storage_->ReadPage(id, &page, ctx));
  KCPQ_RETURN_IF_ERROR(EvictIfFull(shard));
  shard.policy->OnInsert(id);
  *out = page;
  shard.frames.emplace(id, Frame{std::move(page), /*dirty=*/false});
  return Status::OK();
}

Status BufferManager::Write(PageId id, const Page& page) {
  if (capacity_ == 0) {
    return storage_->WritePage(id, page);
  }
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it != shard.frames.end()) {
    shard.policy->OnAccess(id);
    it->second.page = page;
    it->second.dirty = true;
    return Status::OK();
  }
  KCPQ_RETURN_IF_ERROR(EvictIfFull(shard));
  shard.policy->OnInsert(id);
  shard.frames.emplace(id, Frame{page, /*dirty=*/true});
  return Status::OK();
}

Result<PageId> BufferManager::Allocate() { return storage_->Allocate(); }

Status BufferManager::Free(PageId id) {
  {
    Shard& shard = ShardFor(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      shard.policy->OnErase(id);
      shard.frames.erase(it);
    }
  }
  return storage_->Free(id);
}

Status BufferManager::EvictIfFull(Shard& shard) {
  if (shard.frames.size() < shard.capacity) return Status::OK();
  const PageId victim = shard.policy->ChooseVictim();
  auto it = shard.frames.find(victim);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  ++Tls().evictions;
  if (it->second.dirty) {
    writebacks_.fetch_add(1, std::memory_order_relaxed);
    ++Tls().writebacks;
    KCPQ_RETURN_IF_ERROR(storage_->WritePage(victim, it->second.page));
  }
  shard.frames.erase(it);
  return Status::OK();
}

Status BufferManager::Flush() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& [id, frame] : shard->frames) {
      if (!frame.dirty) continue;
      writebacks_.fetch_add(1, std::memory_order_relaxed);
      ++Tls().writebacks;
      KCPQ_RETURN_IF_ERROR(storage_->WritePage(id, frame.page));
      frame.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferManager::FlushAndClear() {
  KCPQ_RETURN_IF_ERROR(Flush());
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [id, frame] : shard->frames) shard->policy->OnErase(id);
    shard->frames.clear();
  }
  return Status::OK();
}

size_t BufferManager::resident() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->frames.size();
  }
  return total;
}

BufferStats BufferManager::stats() const {
  BufferStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.writebacks = writebacks_.load(std::memory_order_relaxed);
  return s;
}

BufferStats BufferManager::ThreadStats() const { return Tls(); }

void BufferManager::ResetStats() {
  // Resets the global counters only. Thread-local views are monotone and
  // cannot be reset across threads; per-query accounting diffs them
  // (before/after), which is reset-agnostic.
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  writebacks_.store(0, std::memory_order_relaxed);
}

}  // namespace kcpq
