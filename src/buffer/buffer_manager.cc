#include "buffer/buffer_manager.h"

#include <algorithm>
#include <chrono>
#include <set>

#include "obs/kcpq_metrics.h"
#include "obs/trace.h"

namespace kcpq {

namespace internal {

/// One thread's counters for one buffer instance. Atomics because an
/// aggregating thread (AggregateStats) reads them while the owner thread
/// increments; all accesses are relaxed — per-counter exactness is all
/// the consumers need, not cross-counter snapshots.
struct BufferTlsCounters {
  explicit BufferTlsCounters(uint64_t id) : instance_id(id) {}
  const uint64_t instance_id;
  std::atomic<uint64_t> hits{0};
  std::atomic<uint64_t> misses{0};
  std::atomic<uint64_t> evictions{0};
  std::atomic<uint64_t> writebacks{0};

  BufferStats Load() const {
    BufferStats s;
    s.hits = hits.load(std::memory_order_relaxed);
    s.misses = misses.load(std::memory_order_relaxed);
    s.evictions = evictions.load(std::memory_order_relaxed);
    s.writebacks = writebacks.load(std::memory_order_relaxed);
    return s;
  }
};

}  // namespace internal

namespace {

using internal::BufferTlsCounters;

/// Monotone instance-id source: ids are never reused, so a thread-local
/// table keyed by id can never confuse a dead buffer with a new one that
/// happens to land at the same address.
std::atomic<uint64_t> next_instance_id{1};

struct ThreadTable;

/// Global view of every thread's per-buffer tables, so AggregateStats can
/// sum contributions across threads — including threads that already
/// exited, whose counts fold into `retired` from the ThreadTable dtor.
/// Lock order: registry mu before any table mu.
struct ThreadStatsRegistry {
  std::mutex mu;
  std::set<ThreadTable*> live;
  std::unordered_map<uint64_t, BufferStats> retired;  // by instance id

  static ThreadStatsRegistry& Get() {
    // Leaked: thread_local destructors may run after static destructors.
    static ThreadStatsRegistry* instance = new ThreadStatsRegistry();
    return *instance;
  }
};

/// One thread's table of per-buffer counters. The entries vector is
/// append-only and guarded by `mu` so an aggregator can walk it; the
/// owner thread scans without the lock (only the owner mutates the
/// vector, and it appends under the lock). Counter slots are heap
/// allocations so their addresses survive vector growth. Entries are tiny
/// and never removed; a process would have to churn through millions of
/// BufferManager instances on one thread for the table to matter.
struct ThreadTable {
  std::mutex mu;
  std::vector<std::unique_ptr<BufferTlsCounters>> entries;

  ThreadTable() {
    ThreadStatsRegistry& reg = ThreadStatsRegistry::Get();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.live.insert(this);
  }

  ~ThreadTable() {
    // Retire this thread's counts so aggregate views keep seeing them.
    ThreadStatsRegistry& reg = ThreadStatsRegistry::Get();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.live.erase(this);
    for (const auto& e : entries) {
      BufferStats& into = reg.retired[e->instance_id];
      BufferStats s = e->Load();
      into.hits += s.hits;
      into.misses += s.misses;
      into.evictions += s.evictions;
      into.writebacks += s.writebacks;
    }
  }

  BufferTlsCounters& For(uint64_t instance_id) {
    for (const auto& e : entries) {
      if (e->instance_id == instance_id) return *e;
    }
    std::lock_guard<std::mutex> lock(mu);
    entries.push_back(std::make_unique<BufferTlsCounters>(instance_id));
    return *entries.back();
  }
};

thread_local ThreadTable tls_table;

}  // namespace

BufferManager::BufferManager(StorageManager* storage, size_t capacity_pages,
                             std::unique_ptr<ReplacementPolicy> policy)
    : storage_(storage),
      capacity_(capacity_pages),
      instance_id_(next_instance_id.fetch_add(1, std::memory_order_relaxed)) {
  auto shard = std::make_unique<Shard>();
  shard->policy = std::move(policy);
  shard->capacity = capacity_pages;
  shards_.push_back(std::move(shard));
}

BufferManager::BufferManager(
    StorageManager* storage, size_t capacity_pages, size_t shards,
    const std::function<std::unique_ptr<ReplacementPolicy>()>& policy_factory)
    : storage_(storage),
      capacity_(capacity_pages),
      instance_id_(next_instance_id.fetch_add(1, std::memory_order_relaxed)) {
  const size_t n = std::max<size_t>(shards, 1);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->policy = policy_factory();
    // Even split; the first capacity % n shards take the remainder.
    shard->capacity = capacity_pages / n + (i < capacity_pages % n ? 1 : 0);
    shards_.push_back(std::move(shard));
  }
}

BufferManager::~BufferManager() {
  // Best effort; callers that care about durability call Flush themselves.
  Flush();
}

internal::BufferTlsCounters& BufferManager::Tls() const {
  return tls_table.For(instance_id_);
}

void BufferManager::CountHit() {
  hits_.fetch_add(1, std::memory_order_relaxed);
  Tls().hits.fetch_add(1, std::memory_order_relaxed);
  KCPQ_METRIC_INC(obs::KcpqMetrics::Get().buffer_hits_total);
}

void BufferManager::CountMiss() {
  misses_.fetch_add(1, std::memory_order_relaxed);
  Tls().misses.fetch_add(1, std::memory_order_relaxed);
  KCPQ_METRIC_INC(obs::KcpqMetrics::Get().buffer_misses_total);
}

namespace {

/// Wraps a physical read in an io_wait trace span when the query asked
/// for tracing; otherwise forwards with zero added work.
Status TracedStorageRead(StorageManager* storage, PageId id, Page* out,
                         QueryContext* ctx) {
  obs::TraceBuffer* trace = ctx != nullptr ? ctx->trace() : nullptr;
  if (trace == nullptr) return storage->ReadPage(id, out, ctx);
  obs::TraceEvent e;
  e.kind = obs::TraceEventKind::kIoWait;
  e.a = id;
  e.ts_ns = trace->NowNs();
  Status s = storage->ReadPage(id, out, ctx);
  uint64_t end = trace->NowNs();
  e.dur_ns = end > e.ts_ns ? end - e.ts_ns : 1;
  trace->Record(e);
  // Only traced queries pay for read timing, so the histogram samples
  // traced traffic; untraced hot paths never touch the clock.
  KCPQ_METRIC_OBSERVE(obs::KcpqMetrics::Get().io_read_wait_seconds,
                      static_cast<double>(e.dur_ns) * 1e-9);
  return s;
}

}  // namespace

Status BufferManager::Read(PageId id, Page* out, QueryContext* ctx) {
  if (ctx != nullptr) ctx->OnPageRead(instance_id_, id, storage_->page_size());
  if (capacity_ == 0) {
    CountMiss();
    return TracedStorageRead(storage_, id, out, ctx);
  }
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it != shard.frames.end()) {
    CountHit();
    shard.policy->OnAccess(id);
    *out = it->second.page;
    return Status::OK();
  }
  // Miss: fetch under the shard lock, so concurrent readers of the same
  // page trigger exactly one storage read per residency.
  CountMiss();
  Page page;
  KCPQ_RETURN_IF_ERROR(TracedStorageRead(storage_, id, &page, ctx));
  KCPQ_RETURN_IF_ERROR(EvictIfFull(shard));
  shard.policy->OnInsert(id);
  *out = page;
  shard.frames.emplace(id, Frame{std::move(page), /*dirty=*/false});
  return Status::OK();
}

Status BufferManager::Write(PageId id, const Page& page) {
  if (capacity_ == 0) {
    return storage_->WritePage(id, page);
  }
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it != shard.frames.end()) {
    shard.policy->OnAccess(id);
    it->second.page = page;
    it->second.dirty = true;
    return Status::OK();
  }
  KCPQ_RETURN_IF_ERROR(EvictIfFull(shard));
  shard.policy->OnInsert(id);
  shard.frames.emplace(id, Frame{page, /*dirty=*/true});
  return Status::OK();
}

Result<PageId> BufferManager::Allocate() { return storage_->Allocate(); }

Status BufferManager::Free(PageId id) {
  {
    Shard& shard = ShardFor(id);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.frames.find(id);
    if (it != shard.frames.end()) {
      shard.policy->OnErase(id);
      shard.frames.erase(it);
    }
  }
  return storage_->Free(id);
}

Status BufferManager::EvictIfFull(Shard& shard) {
  if (shard.frames.size() < shard.capacity) return Status::OK();
  const PageId victim = shard.policy->ChooseVictim();
  auto it = shard.frames.find(victim);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  Tls().evictions.fetch_add(1, std::memory_order_relaxed);
  KCPQ_METRIC_INC(obs::KcpqMetrics::Get().buffer_evictions_total);
  if (it->second.dirty) {
    writebacks_.fetch_add(1, std::memory_order_relaxed);
    Tls().writebacks.fetch_add(1, std::memory_order_relaxed);
    KCPQ_METRIC_INC(obs::KcpqMetrics::Get().buffer_writebacks_total);
    KCPQ_RETURN_IF_ERROR(storage_->WritePage(victim, it->second.page));
  }
  shard.frames.erase(it);
  return Status::OK();
}

Status BufferManager::Flush() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& [id, frame] : shard->frames) {
      if (!frame.dirty) continue;
      writebacks_.fetch_add(1, std::memory_order_relaxed);
      Tls().writebacks.fetch_add(1, std::memory_order_relaxed);
      KCPQ_METRIC_INC(obs::KcpqMetrics::Get().buffer_writebacks_total);
      KCPQ_RETURN_IF_ERROR(storage_->WritePage(id, frame.page));
      frame.dirty = false;
    }
  }
  return Status::OK();
}

Status BufferManager::FlushAndClear() {
  KCPQ_RETURN_IF_ERROR(Flush());
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [id, frame] : shard->frames) shard->policy->OnErase(id);
    shard->frames.clear();
  }
  return Status::OK();
}

size_t BufferManager::resident() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->frames.size();
  }
  return total;
}

BufferStats BufferManager::stats() const {
  BufferStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.writebacks = writebacks_.load(std::memory_order_relaxed);
  return s;
}

BufferStats BufferManager::ThreadStats() const { return Tls().Load(); }

BufferStats BufferManager::AggregateStats() const {
  ThreadStatsRegistry& reg = ThreadStatsRegistry::Get();
  std::lock_guard<std::mutex> reg_lock(reg.mu);
  BufferStats total;
  if (auto it = reg.retired.find(instance_id_); it != reg.retired.end()) {
    total = it->second;
  }
  for (ThreadTable* table : reg.live) {
    std::lock_guard<std::mutex> table_lock(table->mu);
    for (const auto& e : table->entries) {
      if (e->instance_id != instance_id_) continue;
      BufferStats s = e->Load();
      total.hits += s.hits;
      total.misses += s.misses;
      total.evictions += s.evictions;
      total.writebacks += s.writebacks;
    }
  }
  return total;
}

void BufferManager::ResetStats() {
  // Resets the global counters only. Thread-local views are monotone and
  // cannot be reset across threads; per-query accounting diffs them
  // (before/after), which is reset-agnostic.
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  writebacks_.store(0, std::memory_order_relaxed);
}

}  // namespace kcpq
