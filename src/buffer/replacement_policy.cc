#include "buffer/replacement_policy.h"

#include <cassert>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/random.h"

namespace kcpq {

namespace {

// LRU via an intrusive recency list: front = most recent, back = victim.
class LruPolicy final : public ReplacementPolicy {
 public:
  void OnInsert(PageId id) override {
    order_.push_front(id);
    where_[id] = order_.begin();
  }

  void OnAccess(PageId id) override {
    auto it = where_.find(id);
    assert(it != where_.end());
    order_.splice(order_.begin(), order_, it->second);
  }

  PageId ChooseVictim() override {
    assert(!order_.empty());
    const PageId victim = order_.back();
    order_.pop_back();
    where_.erase(victim);
    return victim;
  }

  void OnErase(PageId id) override {
    auto it = where_.find(id);
    if (it == where_.end()) return;
    order_.erase(it->second);
    where_.erase(it);
  }

  const char* name() const override { return "lru"; }

 private:
  std::list<PageId> order_;
  std::unordered_map<PageId, std::list<PageId>::iterator> where_;
};

// FIFO: eviction in arrival order, accesses ignored.
class FifoPolicy final : public ReplacementPolicy {
 public:
  void OnInsert(PageId id) override {
    order_.push_front(id);
    where_[id] = order_.begin();
  }

  void OnAccess(PageId /*id*/) override {}

  PageId ChooseVictim() override {
    assert(!order_.empty());
    const PageId victim = order_.back();
    order_.pop_back();
    where_.erase(victim);
    return victim;
  }

  void OnErase(PageId id) override {
    auto it = where_.find(id);
    if (it == where_.end()) return;
    order_.erase(it->second);
    where_.erase(it);
  }

  const char* name() const override { return "fifo"; }

 private:
  std::list<PageId> order_;
  std::unordered_map<PageId, std::list<PageId>::iterator> where_;
};

// Random victim via a swap-with-last dense vector.
class RandomPolicy final : public ReplacementPolicy {
 public:
  explicit RandomPolicy(uint64_t seed) : rng_(seed) {}

  void OnInsert(PageId id) override {
    index_[id] = live_.size();
    live_.push_back(id);
  }

  void OnAccess(PageId /*id*/) override {}

  PageId ChooseVictim() override {
    assert(!live_.empty());
    const size_t slot = rng_.NextBounded(live_.size());
    const PageId victim = live_[slot];
    RemoveAt(slot);
    return victim;
  }

  void OnErase(PageId id) override {
    auto it = index_.find(id);
    if (it == index_.end()) return;
    RemoveAt(it->second);
  }

  const char* name() const override { return "random"; }

 private:
  void RemoveAt(size_t slot) {
    const PageId moved = live_.back();
    index_.erase(live_[slot]);
    live_[slot] = moved;
    live_.pop_back();
    if (slot < live_.size()) index_[moved] = slot;
  }

  Xoshiro256pp rng_;
  std::vector<PageId> live_;
  std::unordered_map<PageId, size_t> index_;
};

}  // namespace

std::unique_ptr<ReplacementPolicy> MakeLruPolicy() {
  return std::make_unique<LruPolicy>();
}

std::unique_ptr<ReplacementPolicy> MakeFifoPolicy() {
  return std::make_unique<FifoPolicy>();
}

std::unique_ptr<ReplacementPolicy> MakeRandomPolicy(uint64_t seed) {
  return std::make_unique<RandomPolicy>(seed);
}

}  // namespace kcpq
