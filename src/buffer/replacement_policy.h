// Page replacement policies for the buffer manager.
//
// The paper's experiments use LRU (Section 4.3.3, following Leutenegger &
// Lopez ICDE'98). FIFO and Random are provided for the ablation benchmarks.

#ifndef KCPQ_BUFFER_REPLACEMENT_POLICY_H_
#define KCPQ_BUFFER_REPLACEMENT_POLICY_H_

#include <cstdint>
#include <memory>

#include "storage/page.h"

namespace kcpq {

/// Tracks the set of resident pages and picks eviction victims. The buffer
/// manager guarantees: every id is OnInsert-ed before OnAccess/OnErase;
/// ChooseVictim is called only when at least one page is resident, and the
/// returned victim is implicitly erased from the policy's tracking.
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;

  ReplacementPolicy(const ReplacementPolicy&) = delete;
  ReplacementPolicy& operator=(const ReplacementPolicy&) = delete;

  /// `id` became resident.
  virtual void OnInsert(PageId id) = 0;
  /// `id` (resident) was hit.
  virtual void OnAccess(PageId id) = 0;
  /// Picks a victim among resident pages and stops tracking it.
  virtual PageId ChooseVictim() = 0;
  /// `id` was dropped without eviction (page freed / buffer cleared).
  virtual void OnErase(PageId id) = 0;

  virtual const char* name() const = 0;

 protected:
  ReplacementPolicy() = default;
};

/// Least-recently-used (the paper's policy).
std::unique_ptr<ReplacementPolicy> MakeLruPolicy();
/// First-in-first-out.
std::unique_ptr<ReplacementPolicy> MakeFifoPolicy();
/// Uniform-random victim, deterministic from `seed`.
std::unique_ptr<ReplacementPolicy> MakeRandomPolicy(uint64_t seed);

}  // namespace kcpq

#endif  // KCPQ_BUFFER_REPLACEMENT_POLICY_H_
