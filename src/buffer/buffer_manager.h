// Page buffer (cache) between the R-tree and its storage manager.
//
// Cost accounting, matching the paper: a query's "disk accesses" are the
// ReadPage calls this buffer issues to the storage manager — i.e. its
// misses. With capacity 0 the buffer is a pass-through and every node
// access costs one disk access (the paper's "zero buffer" setting). The
// paper dedicates B/2 pages to each of the two R-trees (Section 4.3.3):
// here each tree simply owns a BufferManager of capacity B/2 over its own
// storage manager.
//
// Semantics are copy-in/copy-out: Read copies the cached page into the
// caller's buffer, so callers never hold pointers into frames and no pin
// protocol is needed (a 1 KiB copy per node access is far below the cost
// of deserializing the node). Writes are write-back: dirty frames reach
// storage on eviction or Flush.
//
// Locking protocol (since the parallel batch executor, src/exec/): the
// frame table is split into `shards` independent shards, each owning a
// mutex, a frames map, a replacement policy, and a slice of the capacity.
// A page id maps to the shard `id % shards`; the shard's mutex is held for
// the whole Read / Write / Free operation on that page, including the
// storage call on a miss, so a page is fetched at most once per residency
// and the policy sees a consistent history. Operations on pages of
// different shards never contend. Flush / FlushAndClear / resident() lock
// one shard at a time; they are safe to run concurrently with readers but
// see no global atomic snapshot (don't race them against writers and
// expect exact counts). The default `shards = 1` reproduces the classic
// single-threaded buffer byte for byte — same policy decisions, same
// eviction order.
//
// Statistics: the global counters (stats()) are atomics, exact under any
// concurrency. Per-query cost accounting needs per-*thread* counts — two
// queries sharing the buffer would otherwise see each other's misses in a
// before/after delta — so every hit/miss is also recorded in a
// thread-local table keyed by buffer instance; ThreadStats() returns the
// calling thread's view, and the query engines compute their disk-access
// deltas from it. The per-thread tables register themselves in a global
// registry and fold their counts into a retired pool when their thread
// exits, so AggregateStats() — the sum over all threads, living and dead —
// never undercounts a batch whose workers finished before collection.
// Every hit/miss/eviction also feeds the process-wide metrics registry
// (obs/kcpq_metrics.h: kcpq_buffer_*_total).

#ifndef KCPQ_BUFFER_BUFFER_MANAGER_H_
#define KCPQ_BUFFER_BUFFER_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "buffer/replacement_policy.h"
#include "common/query_context.h"
#include "common/status.h"
#include "storage/storage_manager.h"

namespace kcpq {

namespace internal {
struct BufferTlsCounters;  // buffer_manager.cc
}  // namespace internal

/// Hit/miss accounting snapshot. `misses` equals the physical reads this
/// buffer caused; `logical_reads = hits + misses`.
struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;

  uint64_t logical_reads() const { return hits + misses; }
  void Reset() { *this = BufferStats{}; }
};

class BufferManager {
 public:
  /// `storage` must outlive the buffer manager. `capacity_pages` may be 0
  /// (pass-through). `policy` defaults to LRU, the paper's setting. This
  /// constructor builds a single-shard buffer: correct under concurrency,
  /// but every access serializes on one mutex.
  BufferManager(StorageManager* storage, size_t capacity_pages,
                std::unique_ptr<ReplacementPolicy> policy = MakeLruPolicy());

  /// Sharded constructor for concurrent workloads: `shards` (>= 1)
  /// independent shard locks; `policy_factory` is called once per shard
  /// (each shard replaces pages independently). Capacity is split across
  /// shards as evenly as possible.
  BufferManager(StorageManager* storage, size_t capacity_pages, size_t shards,
                const std::function<std::unique_ptr<ReplacementPolicy>()>&
                    policy_factory);

  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Reads page `id` into `*out`, from cache if resident.
  ///
  /// When `ctx` is given, the page is charged to the query's
  /// ResourceAccountant — once per distinct page, on hits and misses alike,
  /// so a query's accounted footprint is the set of pages it touched,
  /// independent of thread count and buffer state — and forwarded to the
  /// storage stack on a miss (deadline-aware retries).
  Status Read(PageId id, Page* out, QueryContext* ctx = nullptr);

  /// Writes `page` to `id` (cached, write-back). Pass-through writes
  /// directly when capacity is 0.
  Status Write(PageId id, const Page& page);

  /// Allocates a fresh page in the underlying storage.
  Result<PageId> Allocate();

  /// Drops any cached copy of `id` (discarding dirty data — the page is
  /// gone) and frees it in storage.
  Status Free(PageId id);

  /// Writes back all dirty frames; frames stay resident.
  Status Flush();

  /// Flush, then drop all frames (cold cache; used between experiment runs).
  Status FlushAndClear();

  size_t capacity() const { return capacity_; }
  size_t shards() const { return shards_.size(); }
  size_t resident() const;

  /// Snapshot of the global counters (by value: they are atomics).
  BufferStats stats() const;
  /// The calling thread's contribution to the counters — the basis for
  /// per-query disk-access deltas when queries run concurrently. Threads
  /// that never touched this buffer see all-zero stats.
  BufferStats ThreadStats() const;
  /// Sum of every thread's contribution to this buffer, including threads
  /// that have already exited (their counts are retired into a global
  /// pool on thread exit). Unlike stats(), this is unaffected by
  /// ResetStats(), so batch-level hit ratios computed from before/after
  /// AggregateStats() deltas are exact even when worker threads are gone
  /// by collection time.
  BufferStats AggregateStats() const;
  void ResetStats();

  StorageManager* storage() const { return storage_; }

 private:
  struct Frame {
    Page page;
    bool dirty = false;
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<PageId, Frame> frames;
    std::unique_ptr<ReplacementPolicy> policy;
    size_t capacity = 0;
  };

  Shard& ShardFor(PageId id) { return *shards_[id % shards_.size()]; }

  /// Ensures space in `shard` for one more frame, evicting (with
  /// write-back) if full. Caller holds shard.mu.
  Status EvictIfFull(Shard& shard);

  /// This thread's stats slot for this buffer instance.
  internal::BufferTlsCounters& Tls() const;

  void CountHit();
  void CountMiss();

  StorageManager* storage_;
  size_t capacity_;
  /// unique_ptr: Shard holds a mutex and cannot move.
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Distinguishes buffer instances in the thread-local stats table (ids
  /// are never reused, unlike addresses).
  const uint64_t instance_id_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> writebacks_{0};
};

}  // namespace kcpq

#endif  // KCPQ_BUFFER_BUFFER_MANAGER_H_
