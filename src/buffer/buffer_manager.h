// Page buffer (cache) between the R-tree and its storage manager.
//
// Cost accounting, matching the paper: a query's "disk accesses" are the
// ReadPage calls this buffer issues to the storage manager — i.e. its
// misses. With capacity 0 the buffer is a pass-through and every node
// access costs one disk access (the paper's "zero buffer" setting). The
// paper dedicates B/2 pages to each of the two R-trees (Section 4.3.3):
// here each tree simply owns a BufferManager of capacity B/2 over its own
// storage manager.
//
// Semantics are copy-in/copy-out: Read copies the cached page into the
// caller's buffer, so callers never hold pointers into frames and no pin
// protocol is needed (a 1 KiB copy per node access is far below the cost
// of deserializing the node). Writes are write-back: dirty frames reach
// storage on eviction or Flush.
//
// Locking protocol (since the parallel batch executor, src/exec/): the
// frame table is split into `shards` independent shards, each owning a
// mutex, a frames map, a replacement policy, and a slice of the capacity.
// A page id maps to the shard `id % shards`; the shard's mutex is held for
// the whole Read / Write / Free operation on that page, including the
// storage call on a miss, so a page is fetched at most once per residency
// and the policy sees a consistent history. Operations on pages of
// different shards never contend. Flush / FlushAndClear / resident() lock
// one shard at a time; they are safe to run concurrently with readers but
// see no global atomic snapshot (don't race them against writers and
// expect exact counts). The default `shards = 1` reproduces the classic
// single-threaded buffer byte for byte — same policy decisions, same
// eviction order.
//
// Speculative prefetch (docs/io.md): Prefetch() stages pages read through
// the storage manager's async path (ReadPagesAsync) in a side table — the
// prefetch area — that is deliberately *not* the frame table. A demand
// miss first consults the area: a staged page is claimed (moved into the
// frame table through the normal eviction path), an in-flight one is
// awaited, anything else falls back to the synchronous read. Because the
// frame table and replacement policy only ever see the demand-driven
// access history, hits/misses/evictions — the paper's cost metric — are
// bit-identical with prefetch on or off; speculation can only convert
// wait time into overlap. Duplicate prefetches of a page coalesce on the
// area; a bounded capacity caps staged+in-flight pages. Failed
// speculative reads are discarded (counted wasted) and the demand read
// retries through the full decorator stack, so faults behave exactly as
// they do without prefetch.
//
// Non-blocking reads (docs/io.md, "completion-driven scheduling"):
// TryRead is the resumable engines' Read. A resident page is served
// exactly like a blocking hit; a non-resident one either claims a staged
// (speculative or demand) copy — counted exactly like a blocking miss,
// inserted through the same eviction path so the replacement policy sees
// the same history — or *parks*: the caller's waker is registered on the
// page's in-flight entry (starting a demand fetch through ReadPagesAsync
// if none exists) and TryRead returns immediately with outcome.parked.
// When the fetch completes, the buffer fires the waker and the caller
// re-runs TryRead; the first re-runner claims the page and counts the
// miss, later ones find it resident and count hits — the same
// one-miss-per-residency (or, at capacity 0, one-miss-per-read) invariant
// the blocking path's fetch-under-shard-lock provides. Demand entries
// share the prefetch area's machinery but are exempt from its capacity
// cap and invisible to the speculation counters (never issued / hit /
// wasted). Demand fetches carry no QueryContext (async completions are
// context-free by the storage contract), so deadline-aware retry
// abandonment doesn't apply to them; a failed fetch is delivered to the
// first claimer as its read's error, and later waiters re-issue fresh.
//
// Statistics: the global counters (stats()) are atomics, exact under any
// concurrency. Per-query cost accounting needs per-*thread* counts — two
// queries sharing the buffer would otherwise see each other's misses in a
// before/after delta — so every hit/miss is also recorded in a
// thread-local table keyed by buffer instance; ThreadStats() returns the
// calling thread's view, and the query engines compute their disk-access
// deltas from it. The per-thread tables register themselves in a global
// registry and fold their counts into a retired pool when their thread
// exits, so AggregateStats() — the sum over all threads, living and dead —
// never undercounts a batch whose workers finished before collection.
// Every hit/miss/eviction also feeds the process-wide metrics registry
// (obs/kcpq_metrics.h: kcpq_buffer_*_total).

#ifndef KCPQ_BUFFER_BUFFER_MANAGER_H_
#define KCPQ_BUFFER_BUFFER_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "buffer/replacement_policy.h"
#include "common/query_context.h"
#include "common/resumable.h"
#include "common/status.h"
#include "storage/storage_manager.h"

namespace kcpq {

namespace internal {
struct BufferTlsCounters;  // buffer_manager.cc
}  // namespace internal

/// Hit/miss accounting snapshot. `misses` equals the *demand* physical
/// reads this buffer caused — the paper's disk-access metric, unchanged by
/// speculation; `logical_reads = hits + misses`. The prefetch counters
/// account the speculative side channel separately and obey the identity
/// `prefetch_issued == prefetch_hits + prefetch_wasted + pending`, where
/// pending (in-flight + staged-unclaimed) is zero after DrainPrefetches.
struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  uint64_t prefetch_wasted = 0;

  uint64_t logical_reads() const { return hits + misses; }
  void Reset() { *this = BufferStats{}; }
};

class BufferManager {
 public:
  /// `storage` must outlive the buffer manager. `capacity_pages` may be 0
  /// (pass-through). `policy` defaults to LRU, the paper's setting. This
  /// constructor builds a single-shard buffer: correct under concurrency,
  /// but every access serializes on one mutex.
  BufferManager(StorageManager* storage, size_t capacity_pages,
                std::unique_ptr<ReplacementPolicy> policy = MakeLruPolicy());

  /// Sharded constructor for concurrent workloads: `shards` (>= 1)
  /// independent shard locks; `policy_factory` is called once per shard
  /// (each shard replaces pages independently). Capacity is split across
  /// shards as evenly as possible.
  BufferManager(StorageManager* storage, size_t capacity_pages, size_t shards,
                const std::function<std::unique_ptr<ReplacementPolicy>()>&
                    policy_factory);

  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Reads page `id` into `*out`, from cache if resident.
  ///
  /// When `ctx` is given, the page is charged to the query's
  /// ResourceAccountant — once per distinct page, on hits and misses alike,
  /// so a query's accounted footprint is the set of pages it touched,
  /// independent of thread count and buffer state — and forwarded to the
  /// storage stack on a miss (deadline-aware retries).
  Status Read(PageId id, Page* out, QueryContext* ctx = nullptr);

  /// How a TryRead attempt was resolved. Exactly one of three shapes:
  /// parked (no page, no counting yet), served hit (`hit`), or served
  /// miss (`!parked && !hit`; `prefetch_claim` marks a miss satisfied by
  /// a claimed *speculative* page, the resumable analog of a blocking
  /// read's prefetch hit).
  struct TryReadOutcome {
    bool parked = false;
    bool hit = false;
    bool prefetch_claim = false;
  };

  /// Non-blocking Read for resumable engines ("park on miss, wake on
  /// completion" — see the file comment). Serves the page when it is
  /// resident or staged; otherwise registers `waker` with the page's
  /// in-flight fetch (starting a demand fetch if none exists), sets
  /// outcome->parked and returns OK without counting anything. The waker
  /// may fire from an I/O thread, possibly before TryRead returns; fire
  /// semantics are at-least-once per park (a woken caller must re-run
  /// TryRead, which may park again). Counting matches Read exactly: one
  /// miss per serve at capacity 0, one miss per residency-establishment
  /// (plus hits) otherwise, and the replacement policy sees the identical
  /// OnInsert/OnAccess history.
  Status TryRead(PageId id, Page* out, QueryContext* ctx, const Waker& waker,
                 TryReadOutcome* outcome);

  /// Speculatively reads `count` pages through the storage manager's async
  /// path into the prefetch area. Pages already resident, already staged,
  /// or beyond the area's capacity are skipped (duplicates coalesce);
  /// returns how many reads were actually issued. When `ctx` is given,
  /// each issued page is charged to the query's ResourceAccountant at
  /// issue time (speculation is not free under governance; the charge
  /// dedups with a later demand read of the same page). Never blocks on
  /// I/O and never fails: a failed speculative read is absorbed as waste.
  size_t Prefetch(const PageId* ids, size_t count, QueryContext* ctx = nullptr);

  /// Settles all speculation: waits for in-flight prefetch reads to
  /// complete, then discards staged-but-unclaimed pages (counting them
  /// wasted). Afterwards `prefetch_issued == prefetch_hits +
  /// prefetch_wasted` exactly. Called by the destructor; call it before
  /// reading final stats.
  void DrainPrefetches();

  /// Caps staged + in-flight prefetched pages (default 128). Issue
  /// requests beyond the cap are dropped, not queued.
  void set_prefetch_capacity(size_t pages);

  /// In-flight speculative reads (issued, not yet completed).
  size_t prefetch_inflight() const;
  /// Completed speculative reads staged but not yet claimed or discarded.
  size_t prefetch_staged() const;
  /// High-water mark of prefetch_inflight over the buffer's lifetime.
  uint64_t prefetch_inflight_peak() const;

  /// Writes `page` to `id` (cached, write-back). Pass-through writes
  /// directly when capacity is 0.
  Status Write(PageId id, const Page& page);

  /// Allocates a fresh page in the underlying storage.
  Result<PageId> Allocate();

  /// Drops any cached copy of `id` (discarding dirty data — the page is
  /// gone) and frees it in storage.
  Status Free(PageId id);

  /// Writes back all dirty frames; frames stay resident.
  Status Flush();

  /// Flush, then drop all frames (cold cache; used between experiment runs).
  Status FlushAndClear();

  size_t capacity() const { return capacity_; }
  size_t shards() const { return shards_.size(); }
  size_t resident() const;

  /// Snapshot of the global counters (by value: they are atomics).
  BufferStats stats() const;
  /// The calling thread's contribution to the counters — the basis for
  /// per-query disk-access deltas when queries run concurrently. Threads
  /// that never touched this buffer see all-zero stats.
  BufferStats ThreadStats() const;
  /// Sum of every thread's contribution to this buffer, including threads
  /// that have already exited (their counts are retired into a global
  /// pool on thread exit). Unlike stats(), this is unaffected by
  /// ResetStats(), so batch-level hit ratios computed from before/after
  /// AggregateStats() deltas are exact even when worker threads are gone
  /// by collection time.
  BufferStats AggregateStats() const;
  void ResetStats();

  StorageManager* storage() const { return storage_; }

 private:
  struct Frame {
    Page page;
    bool dirty = false;
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<PageId, Frame> frames;
    std::unique_ptr<ReplacementPolicy> policy;
    size_t capacity = 0;
  };

  /// One staged read's life in the prefetch area: in-flight (!ready),
  /// then either staged (ready, awaiting a claim) or gone (claimed /
  /// wasted / failed). `abandoned` marks an in-flight entry whose result
  /// is unwanted (Free / FlushAndClear); its completion is discarded as
  /// waste. `demand` marks a fetch started by a parked TryRead rather
  /// than speculation: exempt from the area capacity, excluded from the
  /// prefetch counters, and allowed to complete with an error (`status`),
  /// which the first claimer takes as its read's result. `issuer` is the
  /// query charged for a speculative page at issue time; a claim by a
  /// different query releases that charge (ResourceAccountant). `waiters`
  /// are parked resumable tasks, fired (outside the area lock) when the
  /// entry becomes ready or is erased.
  struct PrefetchEntry {
    bool ready = false;
    bool abandoned = false;
    bool demand = false;
    Status status;
    Page page;
    QueryContext* issuer = nullptr;
    std::vector<Waker> waiters;
  };

  /// Staging table for speculative reads, separate from the frame table so
  /// the replacement policy never observes speculation. Lock order: a
  /// shard mutex may be held when taking `mu`; never the reverse.
  /// Completion callbacks take only `mu`, so a claimer may wait on `cv`
  /// while holding its shard lock without deadlock.
  struct PrefetchArea {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<PageId, PrefetchEntry> entries;
    size_t inflight = 0;
    size_t capacity = 128;
  };

  Shard& ShardFor(PageId id) { return *shards_[id % shards_.size()]; }

  /// Ensures space in `shard` for one more frame, evicting (with
  /// write-back) if full. Caller holds shard.mu.
  Status EvictIfFull(Shard& shard);

  /// Demand-miss hook: claims `id` from the prefetch area (waiting out an
  /// in-flight read) into `*out`. False when the page is not there or its
  /// speculative read failed — caller falls back to the synchronous path.
  bool ClaimPrefetched(PageId id, Page* out, QueryContext* ctx);

  /// Async-read completion (runs on I/O threads; takes only prefetch mu).
  void OnPrefetchComplete(AsyncPageRead done);

  /// Creates an in-flight demand entry for `id` with `waker` parked on
  /// it. Caller holds prefetch mu and has verified no entry exists; the
  /// fetch itself must be issued after *all* locks are released
  /// (IssueDemandFetch) because a kSync-backend completion runs inline
  /// and takes prefetch mu.
  void StartDemandFetchLocked(PageId id, const Waker& waker);
  void IssueDemandFetch(PageId id);

  /// Satellite accounting: a staged page claimed by a different query
  /// than the one that paid for it at issue time credits the issuer back.
  void ReleaseIssuerLocked(const PrefetchEntry& entry, QueryContext* claimer);

  void CountPrefetchIssued();
  void CountPrefetchHit();
  void CountPrefetchWasted();

  /// This thread's stats slot for this buffer instance.
  internal::BufferTlsCounters& Tls() const;

  void CountHit();
  void CountMiss();

  StorageManager* storage_;
  size_t capacity_;
  /// unique_ptr: Shard holds a mutex and cannot move.
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Distinguishes buffer instances in the thread-local stats table (ids
  /// are never reused, unlike addresses).
  const uint64_t instance_id_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> writebacks_{0};

  PrefetchArea prefetch_;
  /// Set once by the first Prefetch call; the demand-read hot path checks
  /// it (one relaxed load) before touching the area, so a prefetch-free
  /// run never takes the area lock and stays bit-identical in behavior
  /// *and* cost to a build without this feature.
  std::atomic<bool> prefetch_active_{false};
  std::atomic<uint64_t> prefetch_issued_{0};
  std::atomic<uint64_t> prefetch_hits_{0};
  std::atomic<uint64_t> prefetch_wasted_{0};
  std::atomic<uint64_t> prefetch_inflight_peak_{0};
};

}  // namespace kcpq

#endif  // KCPQ_BUFFER_BUFFER_MANAGER_H_
