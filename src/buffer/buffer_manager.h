// Page buffer (cache) between the R-tree and its storage manager.
//
// Cost accounting, matching the paper: a query's "disk accesses" are the
// ReadPage calls this buffer issues to the storage manager — i.e. its
// misses. With capacity 0 the buffer is a pass-through and every node
// access costs one disk access (the paper's "zero buffer" setting). The
// paper dedicates B/2 pages to each of the two R-trees (Section 4.3.3):
// here each tree simply owns a BufferManager of capacity B/2 over its own
// storage manager.
//
// Semantics are copy-in/copy-out: Read copies the cached page into the
// caller's buffer, so callers never hold pointers into frames and no pin
// protocol is needed (queries are single-threaded; a 1 KiB copy per node
// access is far below the cost of deserializing the node). Writes are
// write-back: dirty frames reach storage on eviction or Flush.

#ifndef KCPQ_BUFFER_BUFFER_MANAGER_H_
#define KCPQ_BUFFER_BUFFER_MANAGER_H_

#include <memory>
#include <unordered_map>

#include "buffer/replacement_policy.h"
#include "common/status.h"
#include "storage/storage_manager.h"

namespace kcpq {

/// Hit/miss accounting. `misses` equals the physical reads this buffer
/// caused; `logical_reads = hits + misses`.
struct BufferStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t writebacks = 0;

  uint64_t logical_reads() const { return hits + misses; }
  void Reset() { *this = BufferStats{}; }
};

class BufferManager {
 public:
  /// `storage` must outlive the buffer manager. `capacity_pages` may be 0
  /// (pass-through). `policy` defaults to LRU, the paper's setting.
  BufferManager(StorageManager* storage, size_t capacity_pages,
                std::unique_ptr<ReplacementPolicy> policy = MakeLruPolicy());
  ~BufferManager();

  BufferManager(const BufferManager&) = delete;
  BufferManager& operator=(const BufferManager&) = delete;

  /// Reads page `id` into `*out`, from cache if resident.
  Status Read(PageId id, Page* out);

  /// Writes `page` to `id` (cached, write-back). Pass-through writes
  /// directly when capacity is 0.
  Status Write(PageId id, const Page& page);

  /// Allocates a fresh page in the underlying storage.
  Result<PageId> Allocate();

  /// Drops any cached copy of `id` (discarding dirty data — the page is
  /// gone) and frees it in storage.
  Status Free(PageId id);

  /// Writes back all dirty frames; frames stay resident.
  Status Flush();

  /// Flush, then drop all frames (cold cache; used between experiment runs).
  Status FlushAndClear();

  size_t capacity() const { return capacity_; }
  size_t resident() const { return frames_.size(); }
  const BufferStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }
  StorageManager* storage() const { return storage_; }

 private:
  struct Frame {
    Page page;
    bool dirty = false;
  };

  /// Ensures space for one more frame, evicting (with write-back) if full.
  Status EvictIfFull();

  StorageManager* storage_;
  size_t capacity_;
  std::unique_ptr<ReplacementPolicy> policy_;
  std::unordered_map<PageId, Frame> frames_;
  BufferStats stats_;
};

}  // namespace kcpq

#endif  // KCPQ_BUFFER_BUFFER_MANAGER_H_
