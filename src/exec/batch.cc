#include "exec/batch.h"

#include <utility>

#include "exec/thread_pool.h"

namespace kcpq {

namespace {

void RunOne(const RStarTree& tree_p, const RStarTree& tree_q,
            const BatchQuery& query, BatchQueryResult* result) {
  Result<std::vector<PairResult>> r = [&] {
    switch (query.kind) {
      case BatchQueryKind::kClosestPairs:
        return KClosestPairs(tree_p, tree_q, query.options, &result->stats);
      case BatchQueryKind::kSelfClosestPairs:
        return SelfKClosestPairs(tree_p, query.options, &result->stats);
      case BatchQueryKind::kSemiClosestPairs:
        return SemiClosestPairs(tree_p, tree_q, &result->stats);
    }
    return Result<std::vector<PairResult>>(
        Status::InvalidArgument("unknown batch query kind"));
  }();
  if (r.ok()) {
    result->pairs = std::move(r).value();
    result->status = Status::OK();
  } else {
    result->status = r.status();
  }
}

}  // namespace

std::vector<BatchQueryResult> BatchKClosestPairs(
    const RStarTree& tree_p, const RStarTree& tree_q,
    const std::vector<BatchQuery>& queries, const BatchOptions& options,
    BatchStats* stats) {
  std::vector<BatchQueryResult> results(queries.size());

  const size_t threads =
      options.threads == 0 ? ThreadPool::DefaultThreads() : options.threads;
  if (threads == 1) {
    for (size_t i = 0; i < queries.size(); ++i) {
      RunOne(tree_p, tree_q, queries[i], &results[i]);
    }
  } else {
    ThreadPool pool(threads);
    for (size_t i = 0; i < queries.size(); ++i) {
      pool.Submit([&, i] { RunOne(tree_p, tree_q, queries[i], &results[i]); });
    }
    pool.Wait();
  }

  if (stats != nullptr) {
    *stats = BatchStats{};
    stats->queries = results.size();
    for (const BatchQueryResult& r : results) {
      if (!r.status.ok()) {
        ++stats->failed;
        continue;
      }
      stats->node_pairs_processed += r.stats.node_pairs_processed;
      stats->point_distance_computations +=
          r.stats.point_distance_computations;
      stats->leaf_pairs_skipped += r.stats.leaf_pairs_skipped;
      stats->disk_accesses += r.stats.disk_accesses();
    }
  }
  return results;
}

}  // namespace kcpq
