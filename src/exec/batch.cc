#include "exec/batch.h"

#include <chrono>
#include <memory>
#include <utility>

#include "exec/thread_pool.h"
#include "obs/kcpq_metrics.h"

namespace kcpq {

const char* QueryOutcomeName(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kOk:
      return "ok";
    case QueryOutcome::kPartial:
      return "partial";
    case QueryOutcome::kCancelled:
      return "cancelled";
    case QueryOutcome::kFailed:
      return "failed";
    case QueryOutcome::kRejected:
      return "rejected";
  }
  return "?";
}

namespace {

QueryOutcome OutcomeOf(const BatchQueryResult& result) {
  if (!result.status.ok()) return QueryOutcome::kFailed;
  if (result.stats.quality.stop_cause == StopCause::kCancelled) {
    return QueryOutcome::kCancelled;
  }
  if (result.stats.quality.is_partial()) return QueryOutcome::kPartial;
  return QueryOutcome::kOk;
}

void RunOne(const RStarTree& tree_p, const RStarTree& tree_q,
            const BatchQuery& query, const BatchOptions& batch_options,
            const CancellationToken& batch_token, BatchQueryResult* result) {
  // Effective control: the query's own limits tightened by the batch-wide
  // ones, plus the batch cancellation token (fail-fast and external batch
  // cancels both flow through it).
  QueryControl batch_control = batch_options.control;
  batch_control.cancel =
      CancellationToken::Combine(batch_control.cancel, batch_token);
  const QueryControl merged =
      QueryControl::Merged(query.options.control, batch_control);

  // One context per query, owned here for the query's lifetime: its
  // ResourceAccountant unifies the engine's candidate/heap bytes with the
  // buffer pages read on this query's behalf.
  QueryContext ctx(merged);

  Result<std::vector<PairResult>> r = [&] {
    switch (query.kind) {
      case BatchQueryKind::kClosestPairs:
      case BatchQueryKind::kSelfClosestPairs: {
        CpqOptions options = query.options;
        options.control = merged;
        options.context = &ctx;
        if (options.prefetch_window == 0) {
          options.prefetch_window = batch_options.prefetch_window;
        }
        return query.kind == BatchQueryKind::kClosestPairs
                   ? KClosestPairs(tree_p, tree_q, options, &result->stats)
                   : SelfKClosestPairs(tree_p, options, &result->stats);
      }
      case BatchQueryKind::kSemiClosestPairs:
        return SemiClosestPairs(tree_p, tree_q, &result->stats, merged,
                                &ctx);
    }
    return Result<std::vector<PairResult>>(
        Status::InvalidArgument("unknown batch query kind"));
  }();
  result->peak_memory_bytes = ctx.accountant().peak_total_bytes();
  if (r.ok()) {
    result->pairs = std::move(r).value();
    result->status = Status::OK();
  } else {
    result->status = r.status();
  }
  result->outcome = OutcomeOf(*result);
}

/// Per-query batch metrics: outcome counters plus latency / peak-memory
/// distributions. One call per finished (or shed) query.
void FoldBatchQueryMetrics(const BatchQueryResult& result, double seconds) {
#if KCPQ_METRICS
  if (!obs::Enabled()) return;
  const obs::KcpqMetrics& m = obs::KcpqMetrics::Get();
  m.batch_queries_total->Increment();
  switch (result.outcome) {
    case QueryOutcome::kOk:
      m.batch_completed_total->Increment();
      break;
    case QueryOutcome::kPartial:
    case QueryOutcome::kCancelled:
      m.batch_partial_total->Increment();
      break;
    case QueryOutcome::kFailed:
      m.batch_failed_total->Increment();
      break;
    case QueryOutcome::kRejected:
      m.batch_rejected_total->Increment();
      return;  // shed before running: no latency/memory sample
  }
  if (seconds >= 0.0) m.batch_query_seconds->Observe(seconds);
  m.batch_query_peak_memory_bytes->Observe(
      static_cast<double>(result.peak_memory_bytes));
#else
  (void)result;
  (void)seconds;
#endif
}

/// True when per-query wall-clock timing should run at all; compiled-out
/// metrics (and the runtime master switch) skip the clock reads entirely.
bool MetricsTimingOn() {
#if KCPQ_METRICS
  return obs::Enabled();
#else
  return false;
#endif
}

}  // namespace

std::vector<BatchQueryResult> BatchKClosestPairs(
    const RStarTree& tree_p, const RStarTree& tree_q,
    const std::vector<BatchQuery>& queries, const BatchOptions& options,
    BatchStats* stats) {
  std::vector<BatchQueryResult> results(queries.size());

  // One controller per batch: the trees (hence the cost-model constants)
  // are shared by every query.
  std::unique_ptr<AdmissionController> admission;
  if (options.admission.mode != AdmissionMode::kOff) {
    admission = std::make_unique<AdmissionController>(
        options.admission, tree_p.size(), tree_q.size(), tree_p.max_entries(),
        tree_p.buffer()->storage()->page_size());
  }

  // One source per batch; every query polls its token. Fail-fast trips it
  // from whichever worker fails first.
  CancellationSource batch_source;
  const CancellationToken batch_token = batch_source.token();
  const auto run_one = [&](size_t i) {
    if (admission != nullptr) {
      results[i].admission = admission->Admit(queries[i]);
      if (!results[i].admission.admitted) {
        // Shed before any I/O: no RunOne, no page read, no node access.
        results[i].status =
            Status::ResourceExhausted(results[i].admission.reason);
        results[i].outcome = QueryOutcome::kRejected;
        FoldBatchQueryMetrics(results[i], -1.0);
        return;
      }
    }
    const bool timed = MetricsTimingOn();
    const auto start = timed ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point();
    RunOne(tree_p, tree_q, queries[i], options, batch_token, &results[i]);
    double seconds = -1.0;
    if (timed) {
      seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count();
    }
    FoldBatchQueryMetrics(results[i], seconds);
    if (admission != nullptr) {
      admission->Release(results[i].admission);
      // Close the loop: the measured peak and buffer behaviour of every
      // query that ran refine later estimates (no-op unless
      // feedback_alpha > 0).
      admission->RecordOutcome(results[i].admission,
                               results[i].peak_memory_bytes,
                               results[i].stats.node_accesses,
                               results[i].stats.disk_accesses());
    }
    if (options.cancel_batch_on_first_failure && !results[i].status.ok()) {
      batch_source.Cancel();
    }
  };

  const size_t threads =
      options.threads == 0 ? ThreadPool::DefaultThreads() : options.threads;
  if (threads == 1) {
    for (size_t i = 0; i < queries.size(); ++i) run_one(i);
  } else {
    ThreadPool pool(threads);
    for (size_t i = 0; i < queries.size(); ++i) {
      pool.Submit([&run_one, i] { run_one(i); });
    }
    pool.Wait();
  }

  if (stats != nullptr) {
    *stats = BatchStats{};
    stats->queries = results.size();
    for (const BatchQueryResult& r : results) {
      switch (r.outcome) {
        case QueryOutcome::kOk:
          ++stats->ok;
          break;
        case QueryOutcome::kPartial:
          ++stats->partial;
          break;
        case QueryOutcome::kCancelled:
          ++stats->cancelled;
          break;
        case QueryOutcome::kFailed:
          ++stats->failed;
          break;
        case QueryOutcome::kRejected:
          ++stats->rejected;
          break;
      }
      if (!r.status.ok()) continue;
      stats->node_pairs_processed += r.stats.node_pairs_processed;
      stats->point_distance_computations +=
          r.stats.point_distance_computations;
      stats->leaf_pairs_skipped += r.stats.leaf_pairs_skipped;
      stats->disk_accesses += r.stats.disk_accesses();
    }
    if (admission != nullptr) {
      stats->admission_would_reject = admission->would_reject();
    }
  }
  return results;
}

}  // namespace kcpq
