#include "exec/batch.h"

#include <chrono>
#include <functional>
#include <memory>
#include <utility>

#include "buffer/buffer_manager.h"
#include "common/resumable.h"
#include "cpq/resumable.h"
#include "cpq/resumable_semi.h"
#include "exec/scheduler.h"
#include "exec/thread_pool.h"
#include "hs/hs.h"
#include "hs/resumable.h"
#include "obs/kcpq_metrics.h"
#include "obs/log.h"
#include "obs/query_registry.h"

namespace kcpq {

const char* QueryOutcomeName(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kOk:
      return "ok";
    case QueryOutcome::kPartial:
      return "partial";
    case QueryOutcome::kCancelled:
      return "cancelled";
    case QueryOutcome::kFailed:
      return "failed";
    case QueryOutcome::kRejected:
      return "rejected";
  }
  return "?";
}

namespace {

/// Registry-facing kind names (static storage, as Register requires).
const char* BatchQueryKindName(BatchQueryKind kind) {
  switch (kind) {
    case BatchQueryKind::kClosestPairs:
      return "kcp";
    case BatchQueryKind::kSelfClosestPairs:
      return "self";
    case BatchQueryKind::kSemiClosestPairs:
      return "semi";
    case BatchQueryKind::kHsClosestPairs:
      return "hs";
  }
  return "?";
}

/// Flight-recorder record for one finished (or shed) query: everything
/// `/queries?state=done` and the slow-query log render, self-contained.
obs::QuerySummary MakeSummary(const BatchQuery& query,
                              const BatchQueryResult& result,
                              const char* scheduler, double seconds) {
  obs::QuerySummary s;
  s.kind = BatchQueryKindName(query.kind);
  s.family = QueryFamilyName(query.options.family);
  s.scheduler = scheduler;
  s.outcome = QueryOutcomeName(result.outcome);
  s.seconds = seconds;
  s.k = query.options.k;
  s.pairs = result.pairs.size();
  s.node_accesses = result.stats.node_accesses;
  s.disk_accesses = result.stats.disk_accesses();
  s.io_parks = result.stats.io_parks;
  const QueryQuality& q = result.stats.quality;
  s.bound_is_upper = q.bound_is_upper;
  if (q.is_partial()) {
    // Anytime certificate: the bound the partial result is certified
    // against (lower for minimizing families, upper for farthest).
    s.stop_cause = StopCauseName(q.stop_cause);
    s.certified_bound = q.guaranteed_lower_bound;
    s.exact = q.is_exact;
  } else if (!result.pairs.empty()) {
    // Complete run: the K-th (worst kept) result distance is the bound.
    s.certified_bound = result.pairs.back().distance;
    s.exact = true;
  } else {
    s.exact = result.status.ok();
  }
  s.admission_estimate_bytes = result.admission.estimated_bytes;
  s.peak_memory_bytes = result.peak_memory_bytes;
  return s;
}

/// Retires a finished query into the registry / slow-query log (both
/// optional). `live` is null for queries that never started (rejected).
void RetireQuery(const BatchOptions& options, const BatchQuery& query,
                 const BatchQueryResult& result, const char* scheduler,
                 double seconds,
                 const std::shared_ptr<obs::QueryObservation>& live) {
  if (options.query_registry == nullptr && options.slow_log == nullptr) {
    return;
  }
  obs::QuerySummary s = MakeSummary(query, result, scheduler, seconds);
  if (live != nullptr) {
    // Complete() would backfill these too, but the slow log reads the
    // summary first.
    s.id = live->id;
    s.pages_read = live->pages_read.load(std::memory_order_relaxed);
    if (s.io_parks == 0) {
      s.io_parks = live->io_parks.load(std::memory_order_relaxed);
    }
  }
  if (options.slow_log != nullptr) options.slow_log->MaybeRecord(s);
  if (options.query_registry != nullptr) {
    if (live != nullptr) {
      options.query_registry->Complete(live, std::move(s));
    } else {
      options.query_registry->Record(std::move(s));
    }
  }
}

/// The HS fields of CpqStats: a 1:1 copy where the counters mean the same
/// thing, plus the documented popped->pairs and queue->heap renames (see
/// BatchQueryKind::kHsClosestPairs).
void MapHsStats(const HsStats& hs, CpqStats* out) {
  *out = CpqStats{};
  out->node_pairs_processed = hs.items_popped;
  out->max_heap_size = hs.max_queue_size;
  out->disk_accesses_p = hs.disk_accesses_p;
  out->disk_accesses_q = hs.disk_accesses_q;
  out->node_accesses = hs.node_accesses;
  out->prefetch_issued = hs.prefetch_issued;
  out->prefetch_hits = hs.prefetch_hits;
  out->io_parks = hs.io_parks;
  out->io_parked_ns = hs.io_parked_ns;
  out->quality = hs.quality;
}

/// The HsOptions a kHsClosestPairs batch query maps to (k_bound is set by
/// HsKClosestPairs / the ResumableHsQuery constructor from options.k).
HsOptions HsOptionsFrom(const CpqOptions& cpq, const QueryControl& merged,
                        QueryContext* ctx, size_t batch_prefetch_window) {
  HsOptions hs;
  hs.family = cpq.family;
  hs.query_rect = cpq.query_rect;
  hs.leaf_kernel = cpq.leaf_kernel;
  hs.prefetch_window =
      cpq.prefetch_window != 0 ? cpq.prefetch_window : batch_prefetch_window;
  hs.control = merged;
  hs.context = ctx;
  return hs;
}

/// Surfaces the mirror's per-query replication tallies (failover, repair,
/// hedging — see common/query_context.h) into the result; all zero when
/// the storage stack has a single replica.
void CopyReplication(const QueryContext& ctx, BatchQueryResult* result) {
  const ReplicationStats& rep = ctx.replication();
  result->failover_reads = rep.failover_reads;
  result->read_repairs = rep.read_repairs;
  result->hedged_reads = rep.hedged_reads;
  result->hedge_wins = rep.hedge_wins;
}

QueryOutcome OutcomeOf(const BatchQueryResult& result) {
  if (!result.status.ok()) return QueryOutcome::kFailed;
  if (result.stats.quality.stop_cause == StopCause::kCancelled) {
    return QueryOutcome::kCancelled;
  }
  if (result.stats.quality.is_partial()) return QueryOutcome::kPartial;
  return QueryOutcome::kOk;
}

void RunOne(const RStarTree& tree_p, const RStarTree& tree_q,
            const BatchQuery& query, const BatchOptions& batch_options,
            const CancellationToken& batch_token,
            obs::QueryObservation* live, BatchQueryResult* result) {
  // Effective control: the query's own limits tightened by the batch-wide
  // ones, plus the batch cancellation token (fail-fast and external batch
  // cancels both flow through it).
  QueryControl batch_control = batch_options.control;
  batch_control.cancel =
      CancellationToken::Combine(batch_control.cancel, batch_token);
  const QueryControl merged =
      QueryControl::Merged(query.options.control, batch_control);

  // One context per query, owned here for the query's lifetime: its
  // ResourceAccountant unifies the engine's candidate/heap bytes with the
  // buffer pages read on this query's behalf.
  QueryContext ctx(merged);
  ctx.set_observation(live);

  Result<std::vector<PairResult>> r = [&] {
    switch (query.kind) {
      case BatchQueryKind::kClosestPairs:
      case BatchQueryKind::kSelfClosestPairs: {
        CpqOptions options = query.options;
        options.control = merged;
        options.context = &ctx;
        if (options.prefetch_window == 0) {
          options.prefetch_window = batch_options.prefetch_window;
        }
        return query.kind == BatchQueryKind::kClosestPairs
                   ? KClosestPairs(tree_p, tree_q, options, &result->stats)
                   : SelfKClosestPairs(tree_p, options, &result->stats);
      }
      case BatchQueryKind::kSemiClosestPairs:
        return SemiClosestPairs(tree_p, tree_q, &result->stats, merged,
                                &ctx);
      case BatchQueryKind::kHsClosestPairs: {
        HsStats hs_stats;
        HsOptions hs = HsOptionsFrom(query.options, merged, &ctx,
                                     batch_options.prefetch_window);
        auto r = HsKClosestPairs(tree_p, tree_q, query.options.k,
                                 std::move(hs), &hs_stats);
        MapHsStats(hs_stats, &result->stats);
        return r;
      }
    }
    return Result<std::vector<PairResult>>(
        Status::InvalidArgument("unknown batch query kind"));
  }();
  result->peak_memory_bytes = ctx.accountant().peak_total_bytes();
  CopyReplication(ctx, result);
  if (r.ok()) {
    result->pairs = std::move(r).value();
    result->status = Status::OK();
  } else {
    result->status = r.status();
  }
  result->outcome = OutcomeOf(*result);
}

/// Per-query batch metrics: outcome counters plus latency / peak-memory
/// distributions (overall and per scheduler mode, so p50/p99 for each
/// executor are derivable from `/metrics` alone). One call per finished
/// (or shed) query.
void FoldBatchQueryMetrics(const BatchQueryResult& result, double seconds,
                           SchedulerMode mode) {
#if KCPQ_METRICS
  if (!obs::Enabled()) return;
  const obs::KcpqMetrics& m = obs::KcpqMetrics::Get();
  m.batch_queries_total->Increment();
  switch (result.outcome) {
    case QueryOutcome::kOk:
      m.batch_completed_total->Increment();
      break;
    case QueryOutcome::kPartial:
    case QueryOutcome::kCancelled:
      m.batch_partial_total->Increment();
      break;
    case QueryOutcome::kFailed:
      m.batch_failed_total->Increment();
      break;
    case QueryOutcome::kRejected:
      m.batch_rejected_total->Increment();
      return;  // shed before running: no latency/memory sample
  }
  if (seconds >= 0.0) {
    m.batch_query_seconds->Observe(seconds);
    (mode == SchedulerMode::kResumable ? m.batch_query_seconds_resumable
                                       : m.batch_query_seconds_blocking)
        ->Observe(seconds);
  }
  m.batch_query_peak_memory_bytes->Observe(
      static_cast<double>(result.peak_memory_bytes));
#else
  (void)result;
  (void)seconds;
  (void)mode;
#endif
}

/// True when per-query wall-clock timing should run at all; compiled-out
/// metrics (and the runtime master switch) skip the clock reads entirely.
bool MetricsTimingOn() {
#if KCPQ_METRICS
  return obs::Enabled();
#else
  return false;
#endif
}

/// The completion-driven executor: every query is a ResumableTask and
/// `options.threads` workers multiplex up to `options.max_inflight` of
/// them, parking on buffer misses (see exec/scheduler.h and docs/io.md).
/// Fills `results` in place; per-query results, certificates, and
/// disk-access counts are identical to the blocking path.
void RunResumableBatch(const RStarTree& tree_p, const RStarTree& tree_q,
                       const std::vector<BatchQuery>& queries,
                       const BatchOptions& options,
                       AdmissionController* admission,
                       CancellationSource* batch_source,
                       const CancellationToken& batch_token,
                       std::vector<BatchQueryResult>* results) {
  // Per-query state that must outlive the scheduler run: contexts are
  // registered as issuers of staged prefetch entries, so they may only be
  // destroyed after the post-run buffer drains below.
  struct Slot {
    std::unique_ptr<QueryContext> ctx;
    HsStats hs_stats;  // kHsClosestPairs only; mapped into CpqStats on done
    bool timed = false;
    std::chrono::steady_clock::time_point start;
    std::shared_ptr<obs::QueryObservation> live;  // registry attached only
  };
  std::vector<Slot> slots(queries.size());

  const auto factory = [&](size_t i,
                           Waker waker) -> std::unique_ptr<ResumableTask> {
    BatchQueryResult& result = (*results)[i];
    if (admission != nullptr) {
      result.admission = admission->Admit(queries[i]);
      if (!result.admission.admitted) {
        result.status = Status::ResourceExhausted(result.admission.reason);
        result.outcome = QueryOutcome::kRejected;
        FoldBatchQueryMetrics(result, -1.0, SchedulerMode::kResumable);
        RetireQuery(options, queries[i], result, "resumable", -1.0, nullptr);
        return nullptr;
      }
    }
    Slot& slot = slots[i];
    slot.timed = MetricsTimingOn();
    if (slot.timed) slot.start = std::chrono::steady_clock::now();
    if (options.query_registry != nullptr) {
      slot.live = options.query_registry->Register(
          BatchQueryKindName(queries[i].kind),
          QueryFamilyName(queries[i].options.family), "resumable",
          queries[i].options.k);
    }

    QueryControl batch_control = options.control;
    batch_control.cancel =
        CancellationToken::Combine(batch_control.cancel, batch_token);
    const QueryControl merged =
        QueryControl::Merged(queries[i].options.control, batch_control);

    switch (queries[i].kind) {
      case BatchQueryKind::kClosestPairs:
      case BatchQueryKind::kSelfClosestPairs: {
        slot.ctx = std::make_unique<QueryContext>(merged);
        slot.ctx->set_observation(slot.live.get());
        CpqOptions o = queries[i].options;
        o.control = merged;
        o.context = slot.ctx.get();
        if (o.prefetch_window == 0) {
          o.prefetch_window = options.prefetch_window;
        }
        const bool self = queries[i].kind == BatchQueryKind::kSelfClosestPairs;
        if (self) o.self_join = true;
        return std::make_unique<ResumableCpqQuery>(
            tree_p, self ? tree_p : tree_q, std::move(o), &result.stats,
            std::move(waker));
      }
      case BatchQueryKind::kHsClosestPairs: {
        slot.ctx = std::make_unique<QueryContext>(merged);
        slot.ctx->set_observation(slot.live.get());
        HsOptions hs = HsOptionsFrom(queries[i].options, merged,
                                     slot.ctx.get(), options.prefetch_window);
        return std::make_unique<ResumableHsQuery>(
            tree_p, tree_q, queries[i].options.k, std::move(hs),
            &slot.hs_stats, std::move(waker));
      }
      case BatchQueryKind::kSemiClosestPairs: {
        slot.ctx = std::make_unique<QueryContext>(merged);
        slot.ctx->set_observation(slot.live.get());
        return std::make_unique<ResumableSemiQuery>(tree_p, tree_q,
                                                    &result.stats, merged,
                                                    slot.ctx.get(),
                                                    std::move(waker));
      }
    }
    return nullptr;
  };

  const auto on_done = [&](size_t i, ResumableTask* task) {
    BatchQueryResult& result = (*results)[i];
    Slot& slot = slots[i];
    switch (queries[i].kind) {
      case BatchQueryKind::kClosestPairs:
      case BatchQueryKind::kSelfClosestPairs: {
        auto* q = static_cast<ResumableCpqQuery*>(task);
        result.status = q->status();
        if (result.status.ok()) result.pairs = q->TakeResults();
        break;
      }
      case BatchQueryKind::kHsClosestPairs: {
        auto* q = static_cast<ResumableHsQuery*>(task);
        result.status = q->status();
        if (result.status.ok()) result.pairs = q->TakeResults();
        MapHsStats(slot.hs_stats, &result.stats);
        break;
      }
      case BatchQueryKind::kSemiClosestPairs: {
        auto* q = static_cast<ResumableSemiQuery*>(task);
        result.status = q->status();
        if (result.status.ok()) result.pairs = q->TakeResults();
        break;
      }
    }
    result.peak_memory_bytes =
        slot.ctx != nullptr ? slot.ctx->accountant().peak_total_bytes() : 0;
    if (slot.ctx != nullptr) CopyReplication(*slot.ctx, &result);
    result.outcome = OutcomeOf(result);
    double seconds = -1.0;
    if (slot.timed) {
      seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              slot.start)
                    .count();
    }
    result.seconds = seconds;
    FoldBatchQueryMetrics(result, seconds, SchedulerMode::kResumable);
    if ((queries[i].kind == BatchQueryKind::kClosestPairs ||
         queries[i].kind == BatchQueryKind::kSelfClosestPairs) &&
        seconds >= 0.0) {
      // The resumable CPQ engine never reaches FoldCpqMetrics (the
      // blocking entry point), so the per-family latency fold happens
      // here; HS folds its own in ResumableHsQuery::Step.
      KCPQ_METRIC_OBSERVE(FamilyQuerySeconds(queries[i].options.family),
                          seconds);
    }
    RetireQuery(options, queries[i], result, "resumable", seconds, slot.live);
    if (admission != nullptr) {
      admission->Release(result.admission);
      admission->RecordOutcome(result.admission, result.peak_memory_bytes,
                               result.stats.node_accesses,
                               result.stats.disk_accesses());
    }
    if (options.cancel_batch_on_first_failure && !result.status.ok()) {
      batch_source->Cancel();
    }
  };

  ResumableScheduler::Options sched;
  sched.workers = options.threads;        // 0 -> DefaultThreads
  sched.max_inflight = options.max_inflight;  // 0 -> 256
  if (options.query_registry != nullptr) {
    sched.on_park = [&slots](size_t i) {
      if (slots[i].live != nullptr) {
        slots[i].live->io_parks.fetch_add(1, std::memory_order_relaxed);
      }
    };
  }
  ResumableScheduler::Run(queries.size(), factory, on_done, sched);

  // Settle leftover speculation (and any staged demand entries) while the
  // contexts registered as their issuers are still alive; `slots` may only
  // be destroyed after this.
  tree_p.buffer()->DrainPrefetches();
  if (tree_q.buffer() != tree_p.buffer()) tree_q.buffer()->DrainPrefetches();
}

}  // namespace

std::vector<BatchQueryResult> BatchKClosestPairs(
    const RStarTree& tree_p, const RStarTree& tree_q,
    const std::vector<BatchQuery>& queries, const BatchOptions& options,
    BatchStats* stats) {
  std::vector<BatchQueryResult> results(queries.size());

  // One controller per batch: the trees (hence the cost-model constants)
  // are shared by every query.
  std::unique_ptr<AdmissionController> admission;
  if (options.admission.mode != AdmissionMode::kOff) {
    admission = std::make_unique<AdmissionController>(
        options.admission, tree_p.size(), tree_q.size(), tree_p.max_entries(),
        tree_p.buffer()->storage()->page_size());
  }

  // One source per batch; every query polls its token. Fail-fast trips it
  // from whichever worker fails first.
  CancellationSource batch_source;
  const CancellationToken batch_token = batch_source.token();
  const auto run_one = [&](size_t i) {
    if (admission != nullptr) {
      results[i].admission = admission->Admit(queries[i]);
      if (!results[i].admission.admitted) {
        // Shed before any I/O: no RunOne, no page read, no node access.
        results[i].status =
            Status::ResourceExhausted(results[i].admission.reason);
        results[i].outcome = QueryOutcome::kRejected;
        FoldBatchQueryMetrics(results[i], -1.0, SchedulerMode::kBlocking);
        RetireQuery(options, queries[i], results[i], "blocking", -1.0,
                    nullptr);
        return;
      }
    }
    std::shared_ptr<obs::QueryObservation> live;
    if (options.query_registry != nullptr) {
      live = options.query_registry->Register(
          BatchQueryKindName(queries[i].kind),
          QueryFamilyName(queries[i].options.family), "blocking",
          queries[i].options.k);
    }
    const bool timed = MetricsTimingOn();
    const auto start = timed ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point();
    RunOne(tree_p, tree_q, queries[i], options, batch_token, live.get(),
           &results[i]);
    double seconds = -1.0;
    if (timed) {
      seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              start)
                    .count();
    }
    results[i].seconds = seconds;
    FoldBatchQueryMetrics(results[i], seconds, SchedulerMode::kBlocking);
    RetireQuery(options, queries[i], results[i], "blocking", seconds, live);
    if (admission != nullptr) {
      admission->Release(results[i].admission);
      // Close the loop: the measured peak and buffer behaviour of every
      // query that ran refine later estimates (no-op unless
      // feedback_alpha > 0).
      admission->RecordOutcome(results[i].admission,
                               results[i].peak_memory_bytes,
                               results[i].stats.node_accesses,
                               results[i].stats.disk_accesses());
    }
    if (options.cancel_batch_on_first_failure && !results[i].status.ok()) {
      batch_source.Cancel();
    }
  };

  if (options.scheduler == SchedulerMode::kResumable) {
    RunResumableBatch(tree_p, tree_q, queries, options, admission.get(),
                      &batch_source, batch_token, &results);
  } else {
    const size_t threads =
        options.threads == 0 ? ThreadPool::DefaultThreads() : options.threads;
    if (threads == 1) {
      for (size_t i = 0; i < queries.size(); ++i) run_one(i);
    } else {
      ThreadPool pool(threads);
      for (size_t i = 0; i < queries.size(); ++i) {
        pool.Submit([&run_one, i] { run_one(i); });
      }
      pool.Wait();
    }
  }

  if (stats != nullptr) {
    *stats = BatchStats{};
    stats->queries = results.size();
    for (const BatchQueryResult& r : results) {
      switch (r.outcome) {
        case QueryOutcome::kOk:
          ++stats->ok;
          break;
        case QueryOutcome::kPartial:
          ++stats->partial;
          break;
        case QueryOutcome::kCancelled:
          ++stats->cancelled;
          break;
        case QueryOutcome::kFailed:
          ++stats->failed;
          break;
        case QueryOutcome::kRejected:
          ++stats->rejected;
          break;
      }
      // Replication effort is real even when the query ultimately failed
      // (every replica may have been tried), so fold it unconditionally.
      stats->failover_reads += r.failover_reads;
      stats->read_repairs += r.read_repairs;
      stats->hedged_reads += r.hedged_reads;
      stats->hedge_wins += r.hedge_wins;
      if (!r.status.ok()) continue;
      stats->node_pairs_processed += r.stats.node_pairs_processed;
      stats->point_distance_computations +=
          r.stats.point_distance_computations;
      stats->leaf_pairs_skipped += r.stats.leaf_pairs_skipped;
      stats->disk_accesses += r.stats.disk_accesses();
    }
    if (admission != nullptr) {
      stats->admission_would_reject = admission->would_reject();
    }
  }
  return results;
}

}  // namespace kcpq
