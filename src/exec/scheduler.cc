#include "exec/scheduler.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "exec/completion_ring.h"
#include "exec/thread_pool.h"
#include "obs/kcpq_metrics.h"
#include "obs/metrics.h"

namespace kcpq {
namespace {

// Slot lifecycle (see the protocol comment in scheduler.h). The numeric
// values never leave this file.
[[maybe_unused]] constexpr int kIdle = 0;  // not yet started
constexpr int kRunning = 1;  // a worker is inside Step()
constexpr int kParked = 2;   // yielded on a miss, awaiting its waker
constexpr int kWoken = 3;    // completion arrived; queued or about to be
constexpr int kDone = 4;     // finished (or never admitted)

// Shared by the workers and by every waker the factory hands out. Wakers
// hold a shared_ptr so a stale wake fired after Run returns (e.g. from a
// post-run buffer drain erasing leftover demand entries) lands on live
// memory and no-ops against a kDone slot.
struct SchedulerImpl {
  explicit SchedulerImpl(size_t count, size_t workers)
      : states(count), tasks(count), ring(count + workers + 1) {}

  std::vector<std::atomic<int>> states;
  std::vector<std::unique_ptr<ResumableTask>> tasks;
  CompletionRing ring;

  // Runnable entries currently queued (ring + overflow); lets sleeping
  // workers wait on a plain predicate.
  std::atomic<size_t> queued{0};
  std::mutex sleep_mu;
  std::condition_variable sleep_cv;

  // Backstop if the ring ever reports full (the sizing invariant makes
  // that unreachable; see completion_ring.h).
  std::mutex overflow_mu;
  std::vector<size_t> overflow;

  // Admission of new tasks. next_start is written under start_mu but read
  // lock-free by the sleep predicate.
  std::mutex start_mu;
  std::atomic<size_t> next_start{0};
  size_t count = 0;
  size_t max_inflight = 0;
  std::atomic<size_t> inflight{0};
  std::atomic<size_t> done_count{0};

  // Run counters (relaxed; folded into the registry once at the end).
  std::atomic<uint64_t> parks{0};
  std::atomic<uint64_t> wakes{0};
  std::atomic<uint64_t> steps{0};
  std::atomic<uint64_t> peak_inflight{0};
  std::atomic<size_t> parked_count{0};

  const ResumableScheduler::TaskFactory* factory = nullptr;
  const ResumableScheduler::DoneFn* on_done = nullptr;
  const std::function<void(size_t)>* on_park = nullptr;

  bool AllDone() const {
    return done_count.load(std::memory_order_acquire) >= count;
  }

  void UpdateGauges() {
    if (obs::Enabled()) {
      obs::KcpqMetrics::Get().scheduler_parked->Set(
          parked_count.load(std::memory_order_relaxed));
      obs::KcpqMetrics::Get().scheduler_runnable->Set(
          queued.load(std::memory_order_relaxed));
    }
  }

  void Enqueue(size_t index) {
    if (!ring.Push(index)) {
      std::lock_guard<std::mutex> lock(overflow_mu);
      overflow.push_back(index);
    }
    queued.fetch_add(1, std::memory_order_release);
    UpdateGauges();
    // Empty critical section: pairs the notify with any wait in progress
    // without holding the lock across it.
    { std::lock_guard<std::mutex> lock(sleep_mu); }
    sleep_cv.notify_one();
  }

  bool Dequeue(size_t* index) {
    if (ring.Pop(index)) {
      queued.fetch_sub(1, std::memory_order_relaxed);
      UpdateGauges();
      return true;
    }
    {
      std::lock_guard<std::mutex> lock(overflow_mu);
      if (!overflow.empty()) {
        *index = overflow.back();
        overflow.pop_back();
        queued.fetch_sub(1, std::memory_order_relaxed);
        UpdateGauges();
        return true;
      }
    }
    return false;
  }

  // The BufferManager calls this (through the Waker lambda) on the I/O
  // completion path — and, with the synchronous backend, from inside the
  // very Step() that parked. Loop shape per scheduler.h: only the
  // Parked -> Woken transition enqueues.
  void Wake(size_t index) {
    auto& state = states[index];
    int prev = state.load(std::memory_order_acquire);
    for (;;) {
      if (prev == kDone || prev == kWoken) return;
      if (state.compare_exchange_weak(prev, kWoken,
                                      std::memory_order_acq_rel)) {
        break;
      }
    }
    wakes.fetch_add(1, std::memory_order_relaxed);
    KCPQ_METRIC_INC(obs::KcpqMetrics::Get().scheduler_wakes_total);
    if (prev == kParked) {
      parked_count.fetch_sub(1, std::memory_order_relaxed);
      Enqueue(index);
    }
    // prev == kRunning or kIdle: the worker inside Step observes the
    // failed Running -> Parked CAS and requeues the slot itself.
  }

  void FinishSlot(size_t index, bool ran) {
    if (ran && on_done && *on_done) (*on_done)(index, tasks[index].get());
    inflight.fetch_sub(1, std::memory_order_relaxed);
    const size_t finished = done_count.fetch_add(1, std::memory_order_acq_rel) + 1;
    // A start slot just freed (or the run ended): rouse a sleeper to claim
    // it. notify_all at the end so every worker sees AllDone.
    { std::lock_guard<std::mutex> lock(sleep_mu); }
    if (finished >= count) {
      sleep_cv.notify_all();
    } else {
      sleep_cv.notify_one();
    }
  }

  void StepSlot(size_t index) {
    steps.fetch_add(1, std::memory_order_relaxed);
    KCPQ_METRIC_INC(obs::KcpqMetrics::Get().scheduler_steps_total);
    const ResumableTask::StepResult result = tasks[index]->Step();
    auto& state = states[index];
    if (result == ResumableTask::StepResult::kDone) {
      state.store(kDone, std::memory_order_release);
      FinishSlot(index, /*ran=*/true);
      return;
    }
    // kParked. Publish the park; if a completion already flipped the slot
    // to kWoken mid-step, the wake skipped the enqueue and it is ours.
    parks.fetch_add(1, std::memory_order_relaxed);
    KCPQ_METRIC_INC(obs::KcpqMetrics::Get().scheduler_parks_total);
    if (on_park != nullptr && *on_park) (*on_park)(index);
    int expected = kRunning;
    if (state.compare_exchange_strong(expected, kParked,
                                      std::memory_order_acq_rel)) {
      parked_count.fetch_add(1, std::memory_order_relaxed);
      UpdateGauges();
    } else {
      // expected == kWoken: resume it via the queue rather than looping
      // here, so this worker stays fair to other runnable tasks.
      Enqueue(index);
    }
  }

  void RunSlot(size_t index) {
    states[index].store(kRunning, std::memory_order_release);
    StepSlot(index);
  }

  // Admit the next unstarted task if the inflight cap allows. Returns
  // false when nothing could be started (either everything has started or
  // the cap is reached).
  bool TryStart(const std::shared_ptr<SchedulerImpl>& self) {
    size_t index;
    {
      std::lock_guard<std::mutex> lock(start_mu);
      index = next_start.load(std::memory_order_relaxed);
      if (index >= count) return false;
      if (inflight.load(std::memory_order_relaxed) >= max_inflight) {
        return false;
      }
      next_start.store(index + 1, std::memory_order_relaxed);
      const size_t now = inflight.fetch_add(1, std::memory_order_relaxed) + 1;
      uint64_t peak = peak_inflight.load(std::memory_order_relaxed);
      while (peak < now && !peak_inflight.compare_exchange_weak(
                               peak, now, std::memory_order_relaxed)) {
      }
      KCPQ_METRIC_SET_MAX(obs::KcpqMetrics::Get().scheduler_inflight_peak, now);
    }
    states[index].store(kRunning, std::memory_order_release);
    Waker waker = [self, index]() { self->Wake(index); };
    tasks[index] = (*factory)(index, std::move(waker));
    if (tasks[index] == nullptr) {
      // The factory handled this one (admission rejection): no steps, no
      // done callback.
      states[index].store(kDone, std::memory_order_release);
      FinishSlot(index, /*ran=*/false);
      return true;
    }
    StepSlot(index);
    return true;
  }

  void WorkerLoop(const std::shared_ptr<SchedulerImpl>& self) {
    while (!AllDone()) {
      size_t index;
      if (Dequeue(&index)) {
        RunSlot(index);
        continue;
      }
      if (TryStart(self)) continue;
      // Nothing runnable and nothing startable: sleep until a wake, a
      // finish, or a freed admission slot. The timeout backstops the
      // (benign) race where state changes between our checks and the wait.
      std::unique_lock<std::mutex> lock(sleep_mu);
      sleep_cv.wait_for(lock, std::chrono::milliseconds(50), [this] {
        return queued.load(std::memory_order_acquire) > 0 || AllDone() ||
               (next_start.load(std::memory_order_relaxed) < count &&
                inflight.load(std::memory_order_relaxed) < max_inflight);
      });
    }
  }
};

}  // namespace

ResumableScheduler::Stats ResumableScheduler::Run(size_t count,
                                                  const TaskFactory& factory,
                                                  const DoneFn& on_done,
                                                  const Options& options) {
  Stats stats;
  if (count == 0) return stats;
  size_t workers = options.workers > 0 ? options.workers
                                       : ThreadPool::DefaultThreads();
  if (workers > count) workers = count;
  size_t max_inflight = options.max_inflight > 0 ? options.max_inflight : 256;
  if (max_inflight > count) max_inflight = count;

  auto impl = std::make_shared<SchedulerImpl>(count, workers);
  impl->count = count;
  impl->max_inflight = max_inflight;
  impl->factory = &factory;
  impl->on_done = &on_done;
  impl->on_park = &options.on_park;

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads.emplace_back([impl] { impl->WorkerLoop(impl); });
  }
  for (auto& t : threads) t.join();

  stats.parks = impl->parks.load(std::memory_order_relaxed);
  stats.wakes = impl->wakes.load(std::memory_order_relaxed);
  stats.steps = impl->steps.load(std::memory_order_relaxed);
  stats.peak_inflight = impl->peak_inflight.load(std::memory_order_relaxed);
  if (obs::Enabled()) {
    obs::KcpqMetrics::Get().scheduler_parked->Set(0);
    obs::KcpqMetrics::Get().scheduler_runnable->Set(0);
  }
  // The factory/on_done pointers dangle once we return; clear them so a
  // stale waker held by a buffer entry cannot reach them (it only touches
  // states/ring anyway, but belt and braces).
  impl->factory = nullptr;
  impl->on_done = nullptr;
  impl->on_park = nullptr;
  return stats;
}

}  // namespace kcpq
