// Bounded lock-free MPMC ring (Vyukov's bounded queue) carrying slot
// indices between I/O completion threads (producers: wakers fired by the
// BufferManager) and scheduler workers (consumers). Push and Pop are
// wait-free in the common case: one CAS on the position counter plus one
// release store on the cell's sequence number — no mutex on the
// wake/dispatch hot path.
//
// Capacity is fixed at construction (rounded up to a power of two). The
// scheduler sizes the ring to task_count + workers + 1: its wake protocol
// guarantees at most one queued entry per unfinished task, so the ring can
// never fill (a mutex-guarded overflow list in the scheduler backstops the
// invariant anyway).

#ifndef KCPQ_EXEC_COMPLETION_RING_H_
#define KCPQ_EXEC_COMPLETION_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace kcpq {

class CompletionRing {
 public:
  /// Capacity is the smallest power of two >= min_capacity (and >= 2).
  explicit CompletionRing(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    cells_ = std::vector<Cell>(cap);
    for (size_t i = 0; i < cap; ++i) {
      cells_[i].seq.store(i, std::memory_order_relaxed);
    }
    mask_ = cap - 1;
  }

  CompletionRing(const CompletionRing&) = delete;
  CompletionRing& operator=(const CompletionRing&) = delete;

  /// False when full (the caller falls back to its overflow path).
  bool Push(size_t value) {
    Cell* cell;
    size_t pos = enqueue_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->seq.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos);
      if (dif == 0) {
        if (enqueue_.compare_exchange_weak(pos, pos + 1,
                                           std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // full
      } else {
        pos = enqueue_.load(std::memory_order_relaxed);
      }
    }
    cell->value = value;
    cell->seq.store(pos + 1, std::memory_order_release);
    return true;
  }

  /// False when empty.
  bool Pop(size_t* value) {
    Cell* cell;
    size_t pos = dequeue_.load(std::memory_order_relaxed);
    for (;;) {
      cell = &cells_[pos & mask_];
      const size_t seq = cell->seq.load(std::memory_order_acquire);
      const intptr_t dif =
          static_cast<intptr_t>(seq) - static_cast<intptr_t>(pos + 1);
      if (dif == 0) {
        if (dequeue_.compare_exchange_weak(pos, pos + 1,
                                           std::memory_order_relaxed)) {
          break;
        }
      } else if (dif < 0) {
        return false;  // empty
      } else {
        pos = dequeue_.load(std::memory_order_relaxed);
      }
    }
    *value = cell->value;
    cell->seq.store(pos + mask_ + 1, std::memory_order_release);
    return true;
  }

 private:
  struct Cell {
    std::atomic<size_t> seq{0};
    size_t value = 0;
  };

  std::vector<Cell> cells_;
  size_t mask_ = 0;
  alignas(64) std::atomic<size_t> enqueue_{0};
  alignas(64) std::atomic<size_t> dequeue_{0};
};

}  // namespace kcpq

#endif  // KCPQ_EXEC_COMPLETION_RING_H_
