// Fixed-size thread pool for the batch query executor.
//
// Deliberately minimal: a mutex-guarded FIFO of std::function tasks, N
// worker threads, and a Wait() barrier that blocks until every submitted
// task has *finished* (not merely been dequeued). Queries are coarse tasks
// (milliseconds to seconds), so a lock-free queue would buy nothing.

#ifndef KCPQ_EXEC_THREAD_POOL_H_
#define KCPQ_EXEC_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kcpq {

class ThreadPool {
 public:
  /// Spawns `threads` workers (clamped to >= 1). Workers idle until tasks
  /// arrive.
  explicit ThreadPool(size_t threads);

  /// Drains the queue completely (destruction implies Wait), then joins
  /// the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`. Safe from any thread, including worker threads.
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and no task is executing.
  void Wait();

  size_t threads() const { return workers_.size(); }

  /// A sensible default worker count: the hardware concurrency, or 1 when
  /// the runtime cannot tell.
  static size_t DefaultThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;   // tasks currently executing
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace kcpq

#endif  // KCPQ_EXEC_THREAD_POOL_H_
