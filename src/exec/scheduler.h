// Completion-driven scheduler for resumable queries.
//
// The blocking batch executor (exec/batch.h) dedicates one pool thread to
// each in-flight query; on cold storage that thread spends nearly all of
// its time blocked in ReadPage, so concurrency — and therefore the I/O
// overlap the paper's cost model rewards — is capped by the thread count.
// This scheduler inverts the model: queries are ResumableTasks
// (common/resumable.h) that *yield* on a buffer miss, so a small worker
// pool multiplexes hundreds of in-flight queries, each parked inside the
// BufferManager until its page's asynchronous read completes.
//
// Per-slot wake protocol (the heart of the scheduler — lock-free, correct
// even when a completion fires *inside* Step, as the synchronous I/O
// backend does):
//
//   states: Idle -> Running -> (Done | Parked <-> Woken -> Running ...)
//
//   * A worker runs Step() with the slot in Running. If Step returns
//     kParked it CASes Running -> Parked; when that CAS fails the state is
//     already Woken (the page landed mid-step) and the worker requeues the
//     slot itself instead of sleeping it.
//   * A waker (fired by the BufferManager on any completion-side path)
//     CASes the state to Woken; only the transition *from Parked* enqueues
//     the slot on the runnable ring — a wake that lands while the task is
//     Running leaves the enqueue to the worker's failed park-CAS. Wakes on
//     Woken or Done slots are no-ops (stale wakers are expected: entries
//     fired at drain/erase time may target long-finished queries).
//
//   Together: exactly one enqueue per Woken transition, so a slot occupies
//   at most one runnable entry and the ring (completion_ring.h, sized
//   count + workers + 1) can never fill. No wake is ever lost, no park
//   ever sleeps through its completion.
//
// Workers prefer resuming woken tasks over admitting new ones, and admit
// new tasks only while fewer than `max_inflight` are live — the
// backpressure knob that bounds buffer/demand-queue pressure.
//
// Determinism: the scheduler controls only *interleaving*. Each task's own
// step sequence — and with it, the paper's disk-access metric — is fixed
// by the task (see cpq/resumable.h), so results are bit-identical to the
// blocking executor at any worker count or inflight cap.

#ifndef KCPQ_EXEC_SCHEDULER_H_
#define KCPQ_EXEC_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "common/resumable.h"

namespace kcpq {

class ResumableScheduler {
 public:
  struct Options {
    /// Worker threads. 0 = ThreadPool::DefaultThreads().
    size_t workers = 0;
    /// Maximum tasks live (started, not finished) at once; further tasks
    /// start as slots free up. 0 = 256.
    size_t max_inflight = 256;
    /// Observability hook: invoked on the worker thread each time task
    /// `index` parks on a page miss (after the park is committed). Null =
    /// no reporting. Must be cheap and thread-safe — the batch executor
    /// uses it to bump the task's live QueryObservation.
    std::function<void(size_t index)> on_park;
  };

  /// Builds task `index`. The waker must be installed in every TryRead the
  /// task issues; it stays valid (and harmlessly callable) until after the
  /// caller's post-run buffer drains. Returning nullptr marks the task
  /// finished immediately without a done callback — the factory has
  /// handled it (e.g. an admission rejection that fills its result slot).
  using TaskFactory =
      std::function<std::unique_ptr<ResumableTask>(size_t index, Waker waker)>;

  /// Called on a worker thread right after task `index` returns kDone,
  /// before its slot is released (so `max_inflight` also bounds
  /// not-yet-harvested results). Runs concurrently for different tasks.
  using DoneFn = std::function<void(size_t index, ResumableTask* task)>;

  struct Stats {
    uint64_t parks = 0;
    uint64_t wakes = 0;
    uint64_t steps = 0;
    uint64_t peak_inflight = 0;
  };

  /// Runs `count` tasks to completion and returns the run's counters.
  /// Blocks the calling thread. The tasks (and any wakers they registered
  /// with a BufferManager) are destroyed before Run returns, so the caller
  /// must drain the buffers *after* Run only to settle speculation
  /// accounting — stale wakers fired by those drains are no-ops.
  static Stats Run(size_t count, const TaskFactory& factory,
                   const DoneFn& on_done, const Options& options);
};

}  // namespace kcpq

#endif  // KCPQ_EXEC_SCHEDULER_H_
