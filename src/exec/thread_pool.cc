#include "exec/thread_pool.h"

#include <algorithm>
#include <utility>

namespace kcpq {

ThreadPool::ThreadPool(size_t threads) {
  const size_t n = std::max<size_t>(threads, 1);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

size_t ThreadPool::DefaultThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_available_.wait(lock,
                         [this] { return shutdown_ || !queue_.empty(); });
    // Shutdown still drains the queue: every submitted task runs.
    if (queue_.empty()) return;  // implies shutdown_
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) all_done_.notify_all();
  }
}

}  // namespace kcpq
