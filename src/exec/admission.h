// Cost-model admission control for batch query execution.
//
// Before a query runs, its disk-access cost is estimated with the
// analytical model of cpq/cost_model.h and converted to a memory
// footprint (accesses × page size — the pages the query is expected to
// pull through the buffer on its own behalf). The controller compares
// that estimate against a configurable memory pool and concurrency cap
// and decides whether the query may run *before it touches a single
// page*: a rejected query performs zero storage I/O.
//
// Modes:
//   kOff       no controller is constructed; every query runs.
//   kAdvisory  estimates and reservations are tracked and the
//              would-reject counter advances, but every query runs —
//              the mode for sizing a pool against a live workload.
//   kEnforce   over-budget queries are shed with ResourceExhausted and
//              recorded as QueryOutcome::kRejected.
//
// The pool is reserved at admission and released when the query
// finishes, so the enforced invariant is: sum of estimates of in-flight
// queries <= memory_pool_bytes. The estimate is deliberately the
// model's, not the eventual truth — admission is a planning decision
// (the paper's "query optimization" use of the model); the per-query
// ResourceAccountant (common/query_context.h) meters the truth while
// the query runs.

#ifndef KCPQ_EXEC_ADMISSION_H_
#define KCPQ_EXEC_ADMISSION_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace kcpq {

struct BatchQuery;

enum class AdmissionMode { kOff, kAdvisory, kEnforce };

const char* AdmissionModeName(AdmissionMode mode);

struct AdmissionOptions {
  AdmissionMode mode = AdmissionMode::kOff;

  /// Memory pool shared by all in-flight queries; the sum of admitted
  /// estimates never exceeds it (kEnforce). 0 = unlimited.
  uint64_t memory_pool_bytes = 0;

  /// Hard cap on concurrently admitted queries. 0 = unlimited.
  uint64_t max_concurrent = 0;

  /// Workspace overlap fraction fed to the cost model (see
  /// CostModelInput::overlap).
  double overlap = 1.0;

  /// Average node fill factor fed to the cost model.
  double fill = 0.70;

  /// Measured-outcome feedback (closes the ROADMAP "estimate feedback"
  /// and "buffer-aware cost model" items). 0 (default) disables feedback:
  /// estimates are the pure static model, byte-for-byte as before. In
  /// (0, 1], each finished query's measured peak memory and buffer hit
  /// ratio are folded into EWMAs with this smoothing weight, and later
  /// estimates become
  ///
  ///   model_accesses × (1 − hit_ratio_ewma) × page_size × correction
  ///
  /// where `correction` is the EWMA of measured_peak / buffer-aware-base,
  /// clamped to [0.01, 100]. Warm buffers shrink the physical-read term;
  /// the correction factor absorbs whatever workload-specific bias
  /// remains, so repeated queries admit tighter.
  double feedback_alpha = 0.0;
};

/// The verdict for one query. Pass it back to Release() when an admitted
/// query finishes so its reservation returns to the pool.
struct AdmissionDecision {
  bool admitted = true;
  /// The footprint the decision was based on (reserved from the pool
  /// while the query runs); includes feedback corrections when enabled.
  uint64_t estimated_bytes = 0;
  /// The uncorrected buffer-aware base estimate the feedback loop
  /// compares measured peaks against (== estimated_bytes when feedback
  /// is off).
  uint64_t model_bytes = 0;
  /// Human-readable grounds when rejected (or would-rejected).
  std::string reason;
};

/// Thread-safe; one instance guards one batch. `n_p` / `n_q` / `fanout` /
/// `page_size` describe the indexed inputs (the trees are shared by every
/// query of a batch, so these are controller-wide constants).
class AdmissionController {
 public:
  AdmissionController(const AdmissionOptions& options, uint64_t n_p,
                      uint64_t n_q, uint64_t fanout, uint64_t page_size);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Estimates the query's footprint and decides. In kEnforce mode a
  /// rejection leaves the pool untouched; an admission reserves the
  /// estimate until Release().
  AdmissionDecision Admit(const BatchQuery& query);

  /// Returns an admitted decision's reservation to the pool. A rejected
  /// decision is a no-op.
  void Release(const AdmissionDecision& decision);

  /// Feeds one finished query's measured truth back into the estimator
  /// (no-op unless options.feedback_alpha > 0): `measured_peak_bytes`
  /// from the query's ResourceAccountant, plus its buffer behaviour
  /// (`physical_reads / logical_reads` = miss ratio). Thread-safe; call
  /// after Release, only for queries that actually ran.
  void RecordOutcome(const AdmissionDecision& decision,
                     uint64_t measured_peak_bytes, uint64_t logical_reads,
                     uint64_t physical_reads);

  /// Current feedback state (1.0 / 0.0 until the first RecordOutcome).
  double correction() const;
  double observed_hit_ratio() const;

  /// Cost-model footprint of one query in bytes (estimated disk accesses
  /// × page size). Falls back to one page when the model rejects its
  /// input (degenerate trees) — a query always costs at least one read.
  uint64_t EstimateQueryBytes(const BatchQuery& query) const;

  uint64_t admitted() const;
  uint64_t rejected() const;
  /// Queries an enforcing controller would have shed (advances in both
  /// modes; in kEnforce it equals rejected()).
  uint64_t would_reject() const;

 private:
  const AdmissionOptions options_;
  const uint64_t n_p_;
  const uint64_t n_q_;
  const uint64_t fanout_;
  const uint64_t page_size_;

  mutable std::mutex mu_;
  uint64_t reserved_bytes_ = 0;
  uint64_t in_flight_ = 0;
  uint64_t admitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t would_reject_ = 0;
  /// EWMA of measured_peak / buffer-aware base, clamped to [0.01, 100].
  double correction_ = 1.0;
  /// EWMA of observed buffer hit ratios; scales expected physical reads.
  double hit_ratio_ewma_ = 0.0;
  uint64_t feedback_samples_ = 0;
};

}  // namespace kcpq

#endif  // KCPQ_EXEC_ADMISSION_H_
