// Cost-model admission control for batch query execution.
//
// Before a query runs, its disk-access cost is estimated with the
// analytical model of cpq/cost_model.h and converted to a memory
// footprint (accesses × page size — the pages the query is expected to
// pull through the buffer on its own behalf). The controller compares
// that estimate against a configurable memory pool and concurrency cap
// and decides whether the query may run *before it touches a single
// page*: a rejected query performs zero storage I/O.
//
// Modes:
//   kOff       no controller is constructed; every query runs.
//   kAdvisory  estimates and reservations are tracked and the
//              would-reject counter advances, but every query runs —
//              the mode for sizing a pool against a live workload.
//   kEnforce   over-budget queries are shed with ResourceExhausted and
//              recorded as QueryOutcome::kRejected.
//
// The pool is reserved at admission and released when the query
// finishes, so the enforced invariant is: sum of estimates of in-flight
// queries <= memory_pool_bytes. The estimate is deliberately the
// model's, not the eventual truth — admission is a planning decision
// (the paper's "query optimization" use of the model); the per-query
// ResourceAccountant (common/query_context.h) meters the truth while
// the query runs.

#ifndef KCPQ_EXEC_ADMISSION_H_
#define KCPQ_EXEC_ADMISSION_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace kcpq {

struct BatchQuery;

enum class AdmissionMode { kOff, kAdvisory, kEnforce };

const char* AdmissionModeName(AdmissionMode mode);

struct AdmissionOptions {
  AdmissionMode mode = AdmissionMode::kOff;

  /// Memory pool shared by all in-flight queries; the sum of admitted
  /// estimates never exceeds it (kEnforce). 0 = unlimited.
  uint64_t memory_pool_bytes = 0;

  /// Hard cap on concurrently admitted queries. 0 = unlimited.
  uint64_t max_concurrent = 0;

  /// Workspace overlap fraction fed to the cost model (see
  /// CostModelInput::overlap).
  double overlap = 1.0;

  /// Average node fill factor fed to the cost model.
  double fill = 0.70;
};

/// The verdict for one query. Pass it back to Release() when an admitted
/// query finishes so its reservation returns to the pool.
struct AdmissionDecision {
  bool admitted = true;
  /// The cost-model footprint the decision was based on (reserved from
  /// the pool while the query runs).
  uint64_t estimated_bytes = 0;
  /// Human-readable grounds when rejected (or would-rejected).
  std::string reason;
};

/// Thread-safe; one instance guards one batch. `n_p` / `n_q` / `fanout` /
/// `page_size` describe the indexed inputs (the trees are shared by every
/// query of a batch, so these are controller-wide constants).
class AdmissionController {
 public:
  AdmissionController(const AdmissionOptions& options, uint64_t n_p,
                      uint64_t n_q, uint64_t fanout, uint64_t page_size);

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Estimates the query's footprint and decides. In kEnforce mode a
  /// rejection leaves the pool untouched; an admission reserves the
  /// estimate until Release().
  AdmissionDecision Admit(const BatchQuery& query);

  /// Returns an admitted decision's reservation to the pool. A rejected
  /// decision is a no-op.
  void Release(const AdmissionDecision& decision);

  /// Cost-model footprint of one query in bytes (estimated disk accesses
  /// × page size). Falls back to one page when the model rejects its
  /// input (degenerate trees) — a query always costs at least one read.
  uint64_t EstimateQueryBytes(const BatchQuery& query) const;

  uint64_t admitted() const;
  uint64_t rejected() const;
  /// Queries an enforcing controller would have shed (advances in both
  /// modes; in kEnforce it equals rejected()).
  uint64_t would_reject() const;

 private:
  const AdmissionOptions options_;
  const uint64_t n_p_;
  const uint64_t n_q_;
  const uint64_t fanout_;
  const uint64_t page_size_;

  mutable std::mutex mu_;
  uint64_t reserved_bytes_ = 0;
  uint64_t in_flight_ = 0;
  uint64_t admitted_ = 0;
  uint64_t rejected_ = 0;
  uint64_t would_reject_ = 0;
};

}  // namespace kcpq

#endif  // KCPQ_EXEC_ADMISSION_H_
