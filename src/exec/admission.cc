#include "exec/admission.h"

#include <algorithm>
#include <cmath>

#include "cpq/cost_model.h"
#include "exec/batch.h"

namespace kcpq {

const char* AdmissionModeName(AdmissionMode mode) {
  switch (mode) {
    case AdmissionMode::kOff:
      return "off";
    case AdmissionMode::kAdvisory:
      return "advisory";
    case AdmissionMode::kEnforce:
      return "enforce";
  }
  return "?";
}

AdmissionController::AdmissionController(const AdmissionOptions& options,
                                         uint64_t n_p, uint64_t n_q,
                                         uint64_t fanout, uint64_t page_size)
    : options_(options),
      n_p_(n_p),
      n_q_(n_q),
      fanout_(fanout),
      page_size_(page_size) {}

uint64_t AdmissionController::EstimateQueryBytes(
    const BatchQuery& query) const {
  CostModelInput input;
  input.n_p = n_p_;
  // A self-join reads one tree against itself; the semi-join sweeps every
  // P-leaf, which the pairwise model approximates well enough for load
  // shedding (it is an upper-ish bound on locality-friendly workloads).
  input.n_q = query.kind == BatchQueryKind::kSelfClosestPairs ? n_p_ : n_q_;
  input.overlap = options_.overlap;
  input.k = std::max<uint64_t>(1, query.options.k);
  input.fanout = fanout_;
  input.fill = options_.fill;
  Result<CostModelEstimate> estimate = EstimateCpqCost(input);
  if (!estimate.ok()) return page_size_;  // degenerate input: one page
  const double accesses = std::max(1.0, estimate.value().disk_accesses);
  const double bytes = accesses * static_cast<double>(page_size_);
  if (bytes >= static_cast<double>(UINT64_MAX)) return UINT64_MAX;
  return static_cast<uint64_t>(bytes);
}

AdmissionDecision AdmissionController::Admit(const BatchQuery& query) {
  AdmissionDecision decision;
  decision.estimated_bytes = EstimateQueryBytes(query);

  std::lock_guard<std::mutex> lock(mu_);
  std::string reason;
  if (options_.max_concurrent > 0 && in_flight_ >= options_.max_concurrent) {
    reason = "admission: " + std::to_string(in_flight_) +
             " queries in flight >= max_concurrent = " +
             std::to_string(options_.max_concurrent);
  } else if (options_.memory_pool_bytes > 0 &&
             reserved_bytes_ + decision.estimated_bytes >
                 options_.memory_pool_bytes) {
    reason = "admission: estimated " +
             std::to_string(decision.estimated_bytes) + " B + reserved " +
             std::to_string(reserved_bytes_) + " B exceeds pool of " +
             std::to_string(options_.memory_pool_bytes) + " B";
  }
  if (!reason.empty()) {
    ++would_reject_;
    if (options_.mode == AdmissionMode::kEnforce) {
      ++rejected_;
      decision.admitted = false;
      decision.reason = std::move(reason);
      return decision;
    }
    decision.reason = std::move(reason);  // advisory: noted, still admitted
  }
  ++admitted_;
  ++in_flight_;
  reserved_bytes_ += decision.estimated_bytes;
  return decision;
}

void AdmissionController::Release(const AdmissionDecision& decision) {
  if (!decision.admitted) return;
  std::lock_guard<std::mutex> lock(mu_);
  reserved_bytes_ -= std::min(reserved_bytes_, decision.estimated_bytes);
  if (in_flight_ > 0) --in_flight_;
}

uint64_t AdmissionController::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

uint64_t AdmissionController::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

uint64_t AdmissionController::would_reject() const {
  std::lock_guard<std::mutex> lock(mu_);
  return would_reject_;
}

}  // namespace kcpq
