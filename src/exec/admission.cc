#include "exec/admission.h"

#include <algorithm>
#include <cmath>

#include "cpq/cost_model.h"
#include "exec/batch.h"
#include "obs/kcpq_metrics.h"

namespace kcpq {

namespace {

constexpr double kCorrectionFloor = 0.01;
constexpr double kCorrectionCeil = 100.0;

}  // namespace

const char* AdmissionModeName(AdmissionMode mode) {
  switch (mode) {
    case AdmissionMode::kOff:
      return "off";
    case AdmissionMode::kAdvisory:
      return "advisory";
    case AdmissionMode::kEnforce:
      return "enforce";
  }
  return "?";
}

AdmissionController::AdmissionController(const AdmissionOptions& options,
                                         uint64_t n_p, uint64_t n_q,
                                         uint64_t fanout, uint64_t page_size)
    : options_(options),
      n_p_(n_p),
      n_q_(n_q),
      fanout_(fanout),
      page_size_(page_size) {}

uint64_t AdmissionController::EstimateQueryBytes(
    const BatchQuery& query) const {
  CostModelInput input;
  input.n_p = n_p_;
  // A self-join reads one tree against itself; the semi-join sweeps every
  // P-leaf, which the pairwise model approximates well enough for load
  // shedding (it is an upper-ish bound on locality-friendly workloads).
  input.n_q = query.kind == BatchQueryKind::kSelfClosestPairs ? n_p_ : n_q_;
  input.overlap = options_.overlap;
  input.k = std::max<uint64_t>(1, query.options.k);
  input.fanout = fanout_;
  input.fill = options_.fill;
  Result<CostModelEstimate> estimate = EstimateCpqCost(input);
  if (!estimate.ok()) return page_size_;  // degenerate input: one page
  const double accesses = std::max(1.0, estimate.value().disk_accesses);
  const double bytes = accesses * static_cast<double>(page_size_);
  if (bytes >= static_cast<double>(UINT64_MAX)) return UINT64_MAX;
  return static_cast<uint64_t>(bytes);
}

AdmissionDecision AdmissionController::Admit(const BatchQuery& query) {
  AdmissionDecision decision;
  decision.estimated_bytes = EstimateQueryBytes(query);
  decision.model_bytes = decision.estimated_bytes;

  std::lock_guard<std::mutex> lock(mu_);
  if (options_.feedback_alpha > 0.0 && feedback_samples_ > 0) {
    // Buffer-aware base: only the expected *physical* reads occupy new
    // buffer memory; a warm buffer shrinks the footprint. The correction
    // factor then absorbs the workload-specific residual bias.
    const double base = std::max(
        static_cast<double>(page_size_),
        static_cast<double>(decision.model_bytes) * (1.0 - hit_ratio_ewma_));
    decision.model_bytes = static_cast<uint64_t>(base);
    const double corrected = std::min(
        base * correction_, static_cast<double>(UINT64_MAX) / 2);
    decision.estimated_bytes = std::max(
        page_size_, static_cast<uint64_t>(corrected));
  }
  std::string reason;
  if (options_.max_concurrent > 0 && in_flight_ >= options_.max_concurrent) {
    reason = "admission: " + std::to_string(in_flight_) +
             " queries in flight >= max_concurrent = " +
             std::to_string(options_.max_concurrent);
  } else if (options_.memory_pool_bytes > 0 &&
             reserved_bytes_ + decision.estimated_bytes >
                 options_.memory_pool_bytes) {
    reason = "admission: estimated " +
             std::to_string(decision.estimated_bytes) + " B + reserved " +
             std::to_string(reserved_bytes_) + " B exceeds pool of " +
             std::to_string(options_.memory_pool_bytes) + " B";
  }
  if (!reason.empty()) {
    ++would_reject_;
    if (options_.mode == AdmissionMode::kEnforce) {
      ++rejected_;
      decision.admitted = false;
      decision.reason = std::move(reason);
      KCPQ_METRIC_INC(obs::KcpqMetrics::Get().admission_rejected_total);
      return decision;
    }
    decision.reason = std::move(reason);  // advisory: noted, still admitted
  }
  ++admitted_;
  ++in_flight_;
  reserved_bytes_ += decision.estimated_bytes;
  KCPQ_METRIC_INC(obs::KcpqMetrics::Get().admission_admitted_total);
  return decision;
}

void AdmissionController::Release(const AdmissionDecision& decision) {
  if (!decision.admitted) return;
  std::lock_guard<std::mutex> lock(mu_);
  reserved_bytes_ -= std::min(reserved_bytes_, decision.estimated_bytes);
  if (in_flight_ > 0) --in_flight_;
}

void AdmissionController::RecordOutcome(const AdmissionDecision& decision,
                                        uint64_t measured_peak_bytes,
                                        uint64_t logical_reads,
                                        uint64_t physical_reads) {
  if (options_.feedback_alpha <= 0.0 || !decision.admitted) return;
  const double alpha = std::min(options_.feedback_alpha, 1.0);

  double hit_ratio = 0.0;
  if (logical_reads > 0) {
    const uint64_t misses = std::min(physical_reads, logical_reads);
    hit_ratio = 1.0 - static_cast<double>(misses) /
                          static_cast<double>(logical_reads);
  }
  const double base = std::max<double>(1.0,
                                       static_cast<double>(decision.model_bytes));
  double ratio = static_cast<double>(measured_peak_bytes) / base;
  ratio = std::clamp(ratio, kCorrectionFloor, kCorrectionCeil);

  std::lock_guard<std::mutex> lock(mu_);
  if (feedback_samples_ == 0) {
    // First sample seeds the EWMAs so early estimates don't drag a cold
    // prior through dozens of queries.
    hit_ratio_ewma_ = hit_ratio;
    correction_ = ratio;
  } else {
    hit_ratio_ewma_ = alpha * hit_ratio + (1.0 - alpha) * hit_ratio_ewma_;
    correction_ = alpha * ratio + (1.0 - alpha) * correction_;
    correction_ = std::clamp(correction_, kCorrectionFloor, kCorrectionCeil);
  }
  ++feedback_samples_;
  KCPQ_METRIC_INC(obs::KcpqMetrics::Get().admission_feedback_updates_total);
}

double AdmissionController::correction() const {
  std::lock_guard<std::mutex> lock(mu_);
  return feedback_samples_ > 0 ? correction_ : 1.0;
}

double AdmissionController::observed_hit_ratio() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hit_ratio_ewma_;
}

uint64_t AdmissionController::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

uint64_t AdmissionController::rejected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rejected_;
}

uint64_t AdmissionController::would_reject() const {
  std::lock_guard<std::mutex> lock(mu_);
  return would_reject_;
}

}  // namespace kcpq
