// Parallel batch query executor.
//
// Runs many *independent* closest-pair queries concurrently against shared
// R*-trees: a server answering CPQ requests from multiple clients, or an
// experiment sweeping a parameter grid. Parallelism is per query — each
// query runs single-threaded exactly as it would alone, so per-query
// results and CpqStats are identical at any thread count; only wall-clock
// time changes. The shared state below the queries (the trees' buffer
// managers and storage) is thread-safe since the sharded BufferManager
// (see buffer/buffer_manager.h for the locking protocol), which is what
// makes this correct without per-query tree copies.
//
// On a workload whose cost is disk accesses — the paper's cost model —
// batching wins by overlapping I/O waits, independent of core count; see
// bench/bench_parallel.cc.

#ifndef KCPQ_EXEC_BATCH_H_
#define KCPQ_EXEC_BATCH_H_

#include <cstdint>
#include <vector>

#include "cpq/cpq.h"
#include "exec/admission.h"
#include "rtree/rtree.h"

namespace kcpq {

namespace obs {
class QueryRegistry;
class SlowQueryLog;
}  // namespace obs

enum class BatchQueryKind {
  /// KClosestPairs(tree_p, tree_q, options).
  kClosestPairs,
  /// SelfKClosestPairs(tree_p, options); tree_q ignored.
  kSelfClosestPairs,
  /// SemiClosestPairs(tree_p, tree_q); options.k / algorithm ignored.
  kSemiClosestPairs,
  /// HsKClosestPairs(tree_p, tree_q, options.k): the incremental distance
  /// join with default traversal. Reuses the CpqOptions fields that make
  /// sense for HS (k, family, query_rect, control, context,
  /// prefetch_window, leaf_kernel);
  /// algorithm / tie-breaking fields are ignored. HsStats are mapped into
  /// CpqStats (items_popped -> node_pairs_processed, max_queue_size ->
  /// max_heap_size; disk / node / prefetch / park counters carry over).
  kHsClosestPairs,
};

/// How BatchKClosestPairs executes a batch.
enum class SchedulerMode {
  /// One pool thread per running query; every page read blocks its thread
  /// (the classic executor).
  kBlocking,
  /// Completion-driven: queries are resumable state machines multiplexed
  /// over the worker pool, parking on buffer misses instead of blocking
  /// (exec/scheduler.h, docs/io.md). Per-query results, certificates, and
  /// disk-access counts are bit-identical to kBlocking; only wall-clock
  /// and the achievable in-flight query count change. Every kind —
  /// including kSemiClosestPairs (cpq/resumable_semi.h) — runs as a
  /// parking state machine.
  kResumable,
};

/// One query of a batch.
struct BatchQuery {
  BatchQueryKind kind = BatchQueryKind::kClosestPairs;
  CpqOptions options;
};

/// How one query of a batch ended.
enum class QueryOutcome {
  /// Ran to completion; the result is exact.
  kOk,
  /// A deadline or budget tripped; partial result with a quality
  /// certificate in CpqStats::quality.
  kPartial,
  /// Stopped by cancellation (its own token or batch fail-fast); whatever
  /// pairs were drained are still returned.
  kCancelled,
  /// An error Status (I/O and the like); no pairs.
  kFailed,
  /// Shed by the admission controller before performing any I/O; status
  /// is ResourceExhausted, no pairs, zero node/storage accesses.
  kRejected,
};

const char* QueryOutcomeName(QueryOutcome outcome);

/// One query's outcome, at the same index as its BatchQuery.
struct BatchQueryResult {
  Status status;
  std::vector<PairResult> pairs;
  CpqStats stats;
  QueryOutcome outcome = QueryOutcome::kOk;
  /// The admission verdict (default-admitted when admission is off).
  AdmissionDecision admission;
  /// Peak bytes the query's ResourceAccountant metered: engine state plus
  /// distinct buffer pages read on the query's behalf.
  uint64_t peak_memory_bytes = 0;
  /// Wall-clock seconds from admission to completion, -1 when timing was
  /// off (timing runs when metrics are compiled in and enabled). Under the
  /// resumable scheduler this includes parked time — see
  /// CpqStats::io_parked_ns for how much of it was I/O wait.
  double seconds = -1.0;
  /// Replication outcomes the mirrored storage stack recorded on this
  /// query's behalf (common/query_context.h ReplicationStats); all zero on
  /// single-replica stacks. Observational only — the result and the
  /// paper's disk-access metric never depend on them.
  uint64_t failover_reads = 0;
  uint64_t read_repairs = 0;
  uint64_t hedged_reads = 0;
  uint64_t hedge_wins = 0;
};

struct BatchOptions {
  /// Worker threads. 0 = ThreadPool::DefaultThreads(); 1 = run inline on
  /// the calling thread (no pool, deterministic execution order).
  size_t threads = 0;

  /// Batch-wide lifecycle limits, merged (QueryControl::Merged) into every
  /// query's own control: the deadline is shared by the whole batch, and
  /// the batch cancellation token is observed by every query.
  QueryControl control;

  /// When true, the first query that *fails* (error Status, not a partial)
  /// cancels every sibling still running; their outcomes come back
  /// kCancelled. Off by default: one bad query does not spoil a batch.
  bool cancel_batch_on_first_failure = false;

  /// Cost-model admission control (see exec/admission.h). kOff runs every
  /// query; kEnforce sheds over-budget queries with ResourceExhausted
  /// *before* they touch storage. A rejection never trips fail-fast.
  AdmissionOptions admission;

  /// Batch-wide speculative prefetch window, applied to every query whose
  /// own CpqOptions::prefetch_window is 0 (a query's explicit nonzero
  /// window wins). Per-query results and stats stay bit-identical for any
  /// value; only wall-clock changes. 0 = speculation off (default).
  size_t prefetch_window = 0;

  /// Execution model; see SchedulerMode. Results are identical either way.
  SchedulerMode scheduler = SchedulerMode::kBlocking;

  /// kResumable only: cap on queries live (admitted, unfinished) at once.
  /// This is the multiplexing knob — `threads` workers drive up to this
  /// many in-flight queries. 0 = 256. Ignored under kBlocking, where
  /// `threads` itself is the cap.
  size_t max_inflight = 0;

  /// Live telemetry (obs/query_registry.h). When set, every query of the
  /// batch registers a live QueryObservation on start — visible in the
  /// exporter's `/queries` endpoint with its current certified bound —
  /// and retires into the registry's flight recorder on completion.
  /// Rejected queries are recorded without ever going live. Null (the
  /// default) costs nothing. Results and the paper's disk-access metric
  /// are identical either way.
  obs::QueryRegistry* query_registry = nullptr;

  /// Structured slow-query log (obs/log.h). When set, every finished
  /// timed query is offered to the log, which appends one self-contained
  /// JSONL record per offender over its threshold. Null = off.
  obs::SlowQueryLog* slow_log = nullptr;
};

/// Whole-batch aggregates (sums over the per-query stats).
struct BatchStats {
  uint64_t queries = 0;
  /// Outcome counts; ok + partial + cancelled + failed + rejected ==
  /// queries.
  uint64_t ok = 0;
  uint64_t partial = 0;
  uint64_t cancelled = 0;
  uint64_t failed = 0;
  uint64_t rejected = 0;
  /// Queries the admission controller flagged as over-budget; advances in
  /// advisory mode too (where they still run).
  uint64_t admission_would_reject = 0;
  uint64_t node_pairs_processed = 0;
  uint64_t point_distance_computations = 0;
  uint64_t leaf_pairs_skipped = 0;
  uint64_t disk_accesses = 0;
  /// Replication totals (sums of the per-query fields; zero when the
  /// storage stack is not mirrored).
  uint64_t failover_reads = 0;
  uint64_t read_repairs = 0;
  uint64_t hedged_reads = 0;
  uint64_t hedge_wins = 0;
};

/// Runs every query of `queries` against (`tree_p`, `tree_q`) on
/// `options.threads` workers; returns per-query results in input order.
/// Individual query failures land in their BatchQueryResult::status (and
/// BatchStats::failed) without affecting other queries. Both trees must
/// stay unmodified for the duration of the call.
std::vector<BatchQueryResult> BatchKClosestPairs(
    const RStarTree& tree_p, const RStarTree& tree_q,
    const std::vector<BatchQuery>& queries, const BatchOptions& options = {},
    BatchStats* stats = nullptr);

}  // namespace kcpq

#endif  // KCPQ_EXEC_BATCH_H_
