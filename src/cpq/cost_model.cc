#include "cpq/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace kcpq {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Number of tree levels for n points at effective fanout f_eff.
int Levels(double n, double f_eff) {
  int levels = 1;
  double nodes = n / f_eff;  // leaves
  while (nodes > 1.0) {
    ++levels;
    nodes /= f_eff;
  }
  return levels;
}

// Nodes at level l (0 = leaves).
double NodesAtLevel(double n, double f_eff, int level) {
  double nodes = n;
  for (int i = 0; i <= level; ++i) nodes /= f_eff;
  return std::max(1.0, nodes);
}

}  // namespace

Result<CostModelEstimate> EstimateCpqCost(const CostModelInput& input) {
  if (input.n_p == 0 || input.n_q == 0) {
    return Status::InvalidArgument("cardinalities must be positive");
  }
  if (input.overlap < 0.0 || input.overlap > 1.0) {
    return Status::InvalidArgument("overlap must be in [0, 1]");
  }
  if (input.k == 0) return Status::InvalidArgument("k must be positive");
  if (input.fanout < 2) return Status::InvalidArgument("fanout too small");
  if (input.fill <= 0.0 || input.fill > 1.0) {
    return Status::InvalidArgument("fill must be in (0, 1]");
  }

  const double n_p = static_cast<double>(input.n_p);
  const double n_q = static_cast<double>(input.n_q);
  const double k = static_cast<double>(input.k);
  const double o = input.overlap;
  const double f_eff = input.fill * static_cast<double>(input.fanout);

  CostModelEstimate estimate;

  // --- Step 1: expected K-th closest-pair distance ------------------------
  // Interpolate between the adjacent-border regime (o = 0) and the
  // area-overlap regime; for tiny o the border term still dominates.
  const double d_area =
      o > 0.0 ? std::sqrt(k / (kPi * n_p * n_q * o))
              : std::numeric_limits<double>::infinity();
  const double d_border = std::cbrt(k / (n_p * n_q));
  estimate.kth_distance = std::min(d_area, d_border);

  // --- Step 2: node pairs per level ---------------------------------------
  // Pair levels from the leaves up (both traversals reach leaf pairs; the
  // paper's fix-at-root aligns shallower levels too). We cap at the
  // shorter tree's height: above it the fixed root contributes one node.
  const int levels_p = Levels(n_p, f_eff);
  const int levels_q = Levels(n_q, f_eff);
  const int levels = std::max(levels_p, levels_q);
  const double d = estimate.kth_distance;

  double total_pairs = 0.0;
  for (int level = 0; level < levels; ++level) {
    const double np_l = level < levels_p ? NodesAtLevel(n_p, f_eff, level) : 1;
    const double nq_l = level < levels_q ? NodesAtLevel(n_q, f_eff, level) : 1;
    // Side of a node MBR tiling the unit workspace.
    const double sp = std::sqrt(1.0 / np_l);
    const double sq = std::sqrt(1.0 / nq_l);
    const double reach = sp + sq + 2.0 * d;
    double pairs;
    if (o > 0.0) {
      // P-nodes intersecting the overlap strip: fraction ~ min(1, o + sp).
      const double p_in = np_l * std::min(1.0, o + sp);
      // Q-nodes each P-node interacts with: centers within a reach-sided
      // square, Q-node center density nq_l per unit area.
      pairs = p_in * std::min(nq_l, nq_l * reach * reach);
    } else {
      // Disjoint: only nodes near the shared border interact.
      const double p_strip = np_l * std::min(1.0, sp + d);
      const double q_strip = nq_l * std::min(1.0, sq + d);
      // Within the strips, pairing is 1-dimensional along the border.
      pairs = std::min(p_strip * q_strip, p_strip * q_strip * reach);
    }
    pairs = std::min(pairs, np_l * nq_l);
    estimate.node_pairs_per_level.push_back(pairs);
    total_pairs += pairs;
  }
  // Each visited node pair reads two pages (no buffer).
  estimate.disk_accesses = 2.0 * total_pairs;
  return estimate;
}

}  // namespace kcpq
