// In-memory brute-force K closest pairs: the O(|P| * |Q|) reference that
// every tree algorithm is validated against in the tests, and the honest
// "no index" baseline in the benches.

#ifndef KCPQ_CPQ_BRUTE_H_
#define KCPQ_CPQ_BRUTE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "cpq/cpq.h"
#include "geometry/point.h"

namespace kcpq {

/// K closest pairs between two id-tagged point vectors, ascending distance.
/// `self_join` skips reflexive pairs and reports each unordered pair once
/// (p_id < q_id), matching SelfKClosestPairs. `kernel` selects the pair
/// enumeration strategy; the default stays kNestedLoop so the test oracle
/// remains independent of the sweep code it validates (a dedicated test
/// asserts sweep == nested here too).
///
/// `control` stops the scan early (deadline / cancellation; checked per
/// outer point, node budgets do not apply — no tree is involved). Since a
/// half-finished scan certifies nothing, a stopped run reports
/// guaranteed_lower_bound = 0 in `*quality` (when given) and keeps the
/// pairs seen so far. `context`, when given, supersedes `control` (there
/// are no buffer pages to account for here, but the brute oracle then
/// honors the same deadline/cancellation the tree engines see).
std::vector<PairResult> BruteForceKClosestPairs(
    const std::vector<std::pair<Point, uint64_t>>& p,
    const std::vector<std::pair<Point, uint64_t>>& q, size_t k,
    bool self_join = false, Metric metric = Metric::kL2,
    LeafKernel kernel = LeafKernel::kNestedLoop,
    const QueryControl& control = {}, QueryQuality* quality = nullptr,
    QueryContext* context = nullptr);

/// For each point of `p`, its nearest point of `q`; ascending distance.
/// The brute-force reference for SemiClosestPairs.
std::vector<PairResult> BruteForceSemiClosestPairs(
    const std::vector<std::pair<Point, uint64_t>>& p,
    const std::vector<std::pair<Point, uint64_t>>& q);

}  // namespace kcpq

#endif  // KCPQ_CPQ_BRUTE_H_
