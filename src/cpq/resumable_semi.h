// Resumable Semi-CPQ: the per-leaf group nearest-neighbor scan of
// cpq.cc's SemiClosestPairs re-driven as an explicit state machine that
// yields on a buffer miss (closing the PR-6 "semi runs as a blocking
// step" gap — the batch executor now multiplexes semi-joins on the
// completion-driven scheduler like every other kind).
//
// Equivalence contract (tests/resumable_test.cc rides the semi query in
// the 50-seed blocking-vs-resumable differential): bit-identical results,
// identical quality certificate, identical per-query disk accesses. The
// same three properties as ResumableCpqQuery (cpq/resumable.h) deliver
// it:
//
//   1. Same kernels — the traversal replicates ScanLeaves' explicit LIFO
//      stack and GroupNearestForLeaf's best-first Q descent statement for
//      statement, including the worst-bound break / re-test rules.
//   2. Same order — a park resumes AT the read, never before a stop
//      poll, so interleaving cannot add or drop deadline observations.
//   3. Same counting — per-query misses are tallied from TryReadOutcome
//      (miss at claim), which equals the blocking path's thread-local
//      buffer-delta arithmetic; node_accesses counts P leaves and popped
//      Q nodes exactly as the blocking code does (internal P nodes are
//      read but not counted, matching ScanLeaves).

#ifndef KCPQ_CPQ_RESUMABLE_SEMI_H_
#define KCPQ_CPQ_RESUMABLE_SEMI_H_

#include <chrono>
#include <cstdint>
#include <queue>
#include <vector>

#include "buffer/buffer_manager.h"
#include "common/query_context.h"
#include "common/resumable.h"
#include "cpq/cpq.h"
#include "rtree/rtree.h"

namespace kcpq {

/// One resumable semi-join (all-nearest-neighbor) execution. Construct,
/// Step until kDone (re-Stepping only after the waker fires when parked),
/// read status()/TakeResults(), discard. Same lifetime rules as
/// ResumableCpqQuery: trees, context, and waker must outlive the task and
/// any buffer drain that settles staged pages.
class ResumableSemiQuery final : public ResumableTask {
 public:
  /// Mirrors SemiClosestPairs: `stats` may be null; an external `context`
  /// supersedes `control`.
  ResumableSemiQuery(const RStarTree& tree_p, const RStarTree& tree_q,
                     CpqStats* stats, const QueryControl& control,
                     QueryContext* context, Waker waker);
  ~ResumableSemiQuery() override;

  StepResult Step() override;

  /// OK unless the traversal hit a non-deadline storage error. Meaningful
  /// once Step() has returned kDone.
  const Status& status() const { return final_status_; }
  std::vector<PairResult> TakeResults() { return std::move(out_); }

 private:
  enum class Phase {
    kStart,      // stats reset, trivial-query check, pre-trip stop poll
    kScanRead,   // P traversal: read the top of the LIFO stack
    kGroupLoop,  // Q descent: pop, worst-bound break test, stop poll
    kGroupRead,  // Q descent: read the popped node, update best lists
    kGroupEmit,  // leaf finished whole: emit one pair per leaf point
    kFinish,     // epilogue: sort, per-query stats, quality certificate
    kDone,
  };

  struct QueueItem {
    double key;
    PageId page;
    bool operator>(const QueueItem& other) const { return key > other.key; }
  };

  StepResult Park(PageId page);
  StepResult Fail(Status s);
  /// Same shared-buffer rule as ResumableCpqQuery::CountRead: one buffer
  /// serving both trees counts each miss on both sides, matching the
  /// blocking path's thread-local delta arithmetic.
  void CountRead(const BufferManager::TryReadOutcome& outcome, bool is_p);

  bool StartPhase();  // returns false when the query is trivially done
  void FinishPhase();

  const RStarTree& tree_p_;
  const RStarTree& tree_q_;
  CpqStats* stats_;
  CpqStats local_stats_;
  QueryContext local_ctx_;
  QueryContext* ctx_;
  bool accounting_;
  Waker waker_;

  Phase phase_ = Phase::kStart;
  Status final_status_;
  std::vector<PairResult> out_;

  // P traversal state (ScanLeaves' call-stack made explicit). The page
  // being read stays on the stack until the read lands, so a park simply
  // re-reads it.
  std::vector<PageId> stack_;
  Node node_p_, node_q_;

  // Group-NN state for the current P leaf.
  Rect leaf_mbr_;
  std::vector<double> best_;
  std::vector<Entry> best_entry_;
  std::priority_queue<QueueItem, std::vector<QueueItem>,
                      std::greater<QueueItem>>
      queue_;
  double group_worst_ = 0.0;  // worst unresolved best at this pop
  PageId group_page_ = kInvalidPageId;

  // Per-query accounting (see header comment).
  uint64_t node_accesses_ = 0;
  uint64_t misses_p_ = 0;
  uint64_t misses_q_ = 0;
  uint64_t prefetch_hits_ = 0;
  StopCause stop_ = StopCause::kNone;

  // Park bookkeeping, identical to ResumableCpqQuery.
  bool park_pending_ = false;
  std::chrono::steady_clock::time_point park_start_;
};

}  // namespace kcpq

#endif  // KCPQ_CPQ_RESUMABLE_SEMI_H_
