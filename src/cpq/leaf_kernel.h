// Plane-sweep leaf kernel, shared by every leaf/leaf (and object/object)
// combination loop in the query engines (cpq/engine.cc, distance_join.cc,
// hs/hs.cc, brute.cc).
//
// Idea (classic in the closest-pair literature — the optimized
// divide-and-conquer of Pereira & Lobo and the plane-sweep KCPQ variants
// that followed the paper): sort both entry sets along one axis and visit
// pairs in sweep order. For a reference entry `r` and the other set's
// entries in ascending lower-coordinate order, the axis separation
// `other.lo - r.hi` is non-decreasing, and its power-space value
// (AxisGapPow) lower-bounds the pair's full distance under every Minkowski
// metric. So the first time the axis separation alone exceeds the pruning
// bound, the scan for `r` stops: every remaining pair is provably farther
// than the bound, without computing a single full distance.
//
// The kernel only *enumerates* the surviving pairs; the caller's visitor
// keeps its own filtering / counting / result handling, which is what makes
// one template serve four engines with different semantics. The visitor
// returns false to abort the whole sweep (used by the ε-join's max_results
// guard). The bound is re-read through a callable on every skip test, so a
// bound tightened by the visitor mid-sweep prunes the remaining pairs of
// the same leaf pair — strictly better than the nested loop's behavior.
//
// Pair coverage: each cross pair (a, b) is visited exactly once, by
// whichever side enters the sweep first (smaller lo on the sweep axis; ties
// go to `a`). Orientation is preserved: the visitor always receives
// (a-item, b-item) regardless of which side was the reference.
//
// Soundness is *minimizing-only*: the skip relies on AxisGapPow
// lower-bounding the pair's key, which holds when smaller distance means
// smaller key (closest / range-closest). Farthest-pair queries negate
// MAXMAXDIST, breaking that monotonicity, so QueryObjective::SweepUsable()
// gates every call site back to the nested loop for that family.

#ifndef KCPQ_CPQ_LEAF_KERNEL_H_
#define KCPQ_CPQ_LEAF_KERNEL_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "geometry/minkowski.h"
#include "geometry/rect.h"

namespace kcpq {
namespace cpq_internal {

/// Reusable sorted-copy buffers so per-leaf-pair sweeps don't reallocate.
template <typename Item>
struct SweepScratch {
  std::vector<Item> a;
  std::vector<Item> b;
};

/// The axis along which the union of both sets' extents is largest —
/// maximizing spread maximizes the chance the axis test fires early.
template <typename Item, typename RectOf>
int BestSweepAxis(const std::vector<Item>& a, const std::vector<Item>& b,
                  RectOf rect_of) {
  double lo[kDims], hi[kDims];
  for (int d = 0; d < kDims; ++d) {
    lo[d] = std::numeric_limits<double>::infinity();
    hi[d] = -std::numeric_limits<double>::infinity();
  }
  auto account = [&](const std::vector<Item>& items) {
    for (const Item& item : items) {
      const auto& r = rect_of(item);
      for (int d = 0; d < kDims; ++d) {
        lo[d] = std::min(lo[d], r.lo[d]);
        hi[d] = std::max(hi[d], r.hi[d]);
      }
    }
  };
  account(a);
  account(b);
  int best = 0;
  double best_spread = -1.0;
  for (int d = 0; d < kDims; ++d) {
    const double spread = hi[d] - lo[d];
    if (spread > best_spread) {
      best_spread = spread;
      best = d;
    }
  }
  return best;
}

/// Sweeps `a` x `b` and calls `visit(a_item, b_item)` for every pair whose
/// sweep-axis separation does not already violate `bound()` (power space).
/// `strict` selects the violation test: with strict = false a pair is
/// skipped when AxisGapPow >= bound (for engines that discard distances
/// >= bound, like the K-CPQ result heap); with strict = true only when
/// AxisGapPow > bound (for the ε-join, whose results include distance ==
/// epsilon exactly). `visit` returns false to abort. Returns the number of
/// pairs visited, so callers can account skips as |a|·|b| − visited.
template <typename Item, typename RectOf, typename BoundFn, typename VisitFn>
uint64_t PlaneSweepPairs(const std::vector<Item>& a, const std::vector<Item>& b,
                         Metric metric, bool strict,
                         SweepScratch<Item>* scratch, RectOf rect_of,
                         BoundFn bound, VisitFn visit) {
  const int axis = BestSweepAxis(a, b, rect_of);
  scratch->a.assign(a.begin(), a.end());
  scratch->b.assign(b.begin(), b.end());
  const auto by_lo = [&](const Item& x, const Item& y) {
    return rect_of(x).lo[axis] < rect_of(y).lo[axis];
  };
  std::sort(scratch->a.begin(), scratch->a.end(), by_lo);
  std::sort(scratch->b.begin(), scratch->b.end(), by_lo);

  // The axis separation between the reference and a later entry of the
  // other list: positive only when the later entry starts past the
  // reference's upper face, in which case it is the exact axis gap.
  const auto beyond_bound = [&](double ref_hi, const Item& other) {
    const double gap = rect_of(other).lo[axis] - ref_hi;
    if (gap <= 0.0) return false;
    const double axis_pow = AxisGapPow(gap, metric);
    const double t = bound();
    return strict ? axis_pow > t : axis_pow >= t;
  };

  uint64_t visited = 0;
  size_t i = 0, j = 0;
  while (i < scratch->a.size() && j < scratch->b.size()) {
    if (rect_of(scratch->a[i]).lo[axis] <= rect_of(scratch->b[j]).lo[axis]) {
      const Item& ref = scratch->a[i];
      const double ref_hi = rect_of(ref).hi[axis];
      for (size_t jj = j; jj < scratch->b.size(); ++jj) {
        if (beyond_bound(ref_hi, scratch->b[jj])) break;
        ++visited;
        if (!visit(ref, scratch->b[jj])) return visited;
      }
      ++i;
    } else {
      const Item& ref = scratch->b[j];
      const double ref_hi = rect_of(ref).hi[axis];
      for (size_t ii = i; ii < scratch->a.size(); ++ii) {
        if (beyond_bound(ref_hi, scratch->a[ii])) break;
        ++visited;
        if (!visit(scratch->a[ii], ref)) return visited;
      }
      ++j;
    }
  }
  return visited;
}

}  // namespace cpq_internal
}  // namespace kcpq

#endif  // KCPQ_CPQ_LEAF_KERNEL_H_
