// Resumable K-CPQ execution: the blocking engine's traversal re-driven as
// an explicit state machine that *yields* on a buffer miss instead of
// blocking the thread.
//
// The blocking CpqEngine (cpq/engine.h) spends nearly all of its wall time
// inside ReadNode waiting for storage; one OS thread therefore advances one
// query. ResumableCpqQuery replaces every blocking read with
// BufferManager::TryRead: on a non-resident page it registers the
// scheduler-provided waker with the buffer's in-flight fetch and returns
// StepResult::kParked from Step(). The completion-driven scheduler
// (exec/scheduler.h) re-runs the task when the page lands, so a small
// worker pool multiplexes hundreds of in-flight queries — each paying full
// I/O latency, none paying it on a thread.
//
// Equivalence contract (enforced by tests/resumable_test.cc): for any
// query, the resumable execution produces bit-identical results, an
// identical quality certificate, and identical per-query disk-access
// counts to the blocking path. This falls out of three properties:
//
//   1. Same kernels. The machine is a friend of CpqEngine and calls the
//      exact ProcessLeaves / GenerateCandidates / TightenBoundFromCandidates
//      / ShouldStop / FoldFrontier the blocking drivers call, against the
//      same engine state (bound_, results_, certificate_, ...).
//   2. Same traversal order. The recursion is an explicit frame stack and
//      the heap loop pops before yielding, so interleaving with other
//      queries cannot reorder *this* query's work. A park resumes at the
//      read, never before a stop poll (a parked query must not observe a
//      deadline the blocking run would not have polled there).
//   3. Same counting. TryRead counts a miss when the page is claimed, not
//      when the fetch is issued, and per-query misses are tallied from the
//      returned TryReadOutcome (thread-local buffer deltas are meaningless
//      when many queries share a worker thread).
//
// Lifetime: the engine registers wakers and an issuer (QueryContext)
// pointer with the BufferManager. Both may outlive a finished query
// inside staged prefetch entries, so callers must drain the buffers
// (DrainPrefetches) before destroying the task or its QueryContext — the
// batch executor drains once after the whole scheduler run.

#ifndef KCPQ_CPQ_RESUMABLE_H_
#define KCPQ_CPQ_RESUMABLE_H_

#include <chrono>
#include <cstdint>
#include <vector>

#include "common/resumable.h"
#include "cpq/engine.h"

namespace kcpq {

/// One resumable K-CPQ execution. Construct, Step until kDone (re-Stepping
/// only after the waker fires when parked), read status()/TakeResults(),
/// discard. Self-joins pass the same tree twice with options.self_join.
class ResumableCpqQuery final : public ResumableTask {
 public:
  /// `stats` may be null. `options` is copied; `options.context` (if set)
  /// and the trees must outlive the task *and* any buffer drain that
  /// settles its speculation. The waker must be callable from I/O
  /// completion threads until Step() has returned kDone.
  ResumableCpqQuery(const RStarTree& tree_p, const RStarTree& tree_q,
                    CpqOptions options, CpqStats* stats, Waker waker);
  ~ResumableCpqQuery() override;

  StepResult Step() override;

  /// OK unless the traversal hit a non-deadline storage/corruption error.
  /// Meaningful once Step() has returned kDone.
  const Status& status() const { return final_status_; }
  std::vector<PairResult> TakeResults() { return std::move(results_out_); }

 private:
  enum class Phase {
    kStart,       // stats reset, trivial-query checks, prefetch config
    kReadRootP,   // root MBR of P (parks like any read)
    kReadRootQ,   // root MBR of Q
    kSeed,        // tie context + root refs; dispatch to a driver
    kExpandCheck, // recursive driver: stop poll before the pair's reads
    kExpandRead,  // recursive driver: read pair, expand, descend
    kHeapLoop,    // heap driver: prefetch, pop, CP5 / stop checks
    kHeapRead,    // heap driver: read the popped pair, expand, push
    kFinish,      // epilogue: per-query stats + quality certificate
    kDone,
  };

  /// One suspended ProcessPairRecursive activation: the candidate list of
  /// an expanded pair and the index of the next candidate to visit.
  struct RecFrame {
    std::vector<cpq_internal::Candidate> candidates;
    size_t next = 0;
    uint64_t frame_bytes = 0;
  };

  enum class ReadPairOutcome { kOk, kParked, kDeadline, kError };

  /// Non-blocking ReadPair: reads whichever side of (cur_p_, cur_q_) is
  /// not cached yet, parking on a miss-in-flight. Only after BOTH nodes
  /// are resident does it count the pair (node_pairs_processed,
  /// node_accesses += 2) and refresh the refs — identical bookkeeping to
  /// the blocking ReadPair, no matter how many parks interleaved.
  ReadPairOutcome TryReadPair(Status* error);

  /// Records a park on `page` and returns kParked. The matching resume
  /// bookkeeping (parked-time accounting, io_park trace span) runs at the
  /// top of the next Step().
  StepResult Park(PageId page);
  StepResult Fail(Status s);

  /// Tallies one served read into the per-query miss / prefetch-hit
  /// counters. A self-join's shared buffer counts each miss on both sides,
  /// matching the blocking path's thread-local delta arithmetic.
  void CountRead(const BufferManager::TryReadOutcome& outcome, bool is_p);

  /// Walks the frame stack to the next candidate to expand (applying the
  /// blocking candidate loop's prune / drain rules), setting pending_ and
  /// phase kExpandCheck; kFinish when the stack empties.
  void AdvanceRecursive();
  /// RunHeap's stop-drain: folds the popped pair plus the whole remaining
  /// heap into the certificate.
  void DrainHeapIntoCertificate(const cpq_internal::Candidate& popped);

  bool StartPhase();     // returns false when the query is trivially done
  bool ReadRoot(bool is_p, StepResult* parked);
  void SeedPhase();
  void HeapLoopPhase();

  CpqOptions options_;  // stable storage for engine_'s options reference
  cpq_internal::CpqEngine engine_;
  Waker waker_;
  Phase phase_ = Phase::kStart;
  Status final_status_;
  std::vector<PairResult> results_out_;

  // Traversal state that blocking execution keeps on the call stack.
  int root_level_ = 0;
  Rect mbr_p_, mbr_q_;
  cpq_internal::Candidate pending_;  // pair chosen for expansion, pre-read
  cpq_internal::NodeRef cur_p_, cur_q_;  // refs refreshed by TryReadPair
  Node node_p_, node_q_;
  bool have_p_ = false, have_q_ = false;
  std::vector<RecFrame> rec_stack_;
  std::vector<cpq_internal::Candidate> heap_;
  std::vector<cpq_internal::Candidate> candidates_scratch_;
  std::vector<uint32_t> spec_order_;

  // Per-query I/O accounting from TryReadOutcome (see header comment).
  uint64_t misses_p_ = 0;
  uint64_t misses_q_ = 0;
  uint64_t prefetch_hits_ = 0;
  uint64_t prefetch_issued_ = 0;

  // Park bookkeeping: resume time minus park time is the io_park span.
  bool park_pending_ = false;
  PageId park_page_ = kInvalidPageId;
  std::chrono::steady_clock::time_point park_start_;
  uint64_t park_trace_ts_ = 0;
};

}  // namespace kcpq

#endif  // KCPQ_CPQ_RESUMABLE_H_
