#include "cpq/engine.h"

#include <algorithm>
#include <limits>

#include "geometry/metrics.h"
#include "obs/explain.h"
#include "obs/trace.h"

namespace kcpq {
namespace cpq_internal {

namespace {

/// EXPLAIN level of a node pair: the deeper side (leaves are level 0).
int PairLevel(int level_p, int level_q) {
  return level_p > level_q ? level_p : level_q;
}

// m^(level+1): minimum points in a non-root subtree rooted at `level`.
uint64_t MinPointsAtLevel(int level, uint64_t min_entries) {
  uint64_t n = 1;
  for (int i = 0; i <= level; ++i) n *= min_entries;
  return n;
}

// M^(level+1): maximum points in a subtree rooted at `level` (saturating:
// the product overflows quickly and only upper-bounds a capacity).
uint64_t MaxPointsAtLevel(int level, uint64_t max_entries) {
  uint64_t n = 1;
  for (int i = 0; i <= level; ++i) n = SaturatingMul(n, max_entries);
  return n;
}

}  // namespace

uint64_t MinPointsOfNode(const Node& node, uint64_t min_entries) {
  if (node.IsLeaf()) return node.entries.size();
  // Each child is a non-root subtree at node.level - 1.
  return node.entries.size() * MinPointsAtLevel(node.level - 1, min_entries);
}

uint64_t MaxPointsOfNode(const Node& node, uint64_t max_entries) {
  if (node.IsLeaf()) return node.entries.size();
  return SaturatingMul(node.entries.size(),
                       MaxPointsAtLevel(node.level - 1, max_entries));
}

DescendChoice ChooseDescend(int level_p, int level_q,
                            HeightStrategy strategy) {
  if (level_p == 0 && level_q == 0) return DescendChoice::kLeaves;
  if (strategy == HeightStrategy::kFixAtRoot && level_p != level_q) {
    // Fix-at-root: only the deeper (higher-level) tree descends until the
    // two sides meet at the same level.
    return level_p > level_q ? DescendChoice::kFirstOnly
                             : DescendChoice::kSecondOnly;
  }
  // Fix-at-leaves (and equal levels): descend both until a side bottoms
  // out, then keep the leaf fixed.
  if (level_p == 0) return DescendChoice::kSecondOnly;
  if (level_q == 0) return DescendChoice::kFirstOnly;
  return DescendChoice::kBoth;
}

CpqEngine::CpqEngine(const RStarTree& tree_p, const RStarTree& tree_q,
                     const CpqOptions& options, CpqStats* stats)
    : tree_p_(tree_p),
      tree_q_(tree_q),
      options_(options),
      stats_(stats != nullptr ? stats : &local_stats_),
      objective_(options.family, options.metric, options.query_rect),
      results_(options.k, objective_),
      bound_(std::numeric_limits<double>::infinity()),
      local_context_(options.control),
      context_(options.context != nullptr ? options.context : &local_context_),
      profile_(context_->profile()),
      trace_(context_->trace()),
      accounting_(options.context != nullptr ||
                  !options.control.IsUnlimited()),
      certificate_(options.k) {}

Status CpqEngine::Run(std::vector<PairResult>* out) {
  *stats_ = CpqStats{};
  if (options_.k == 0) return Status::OK();
  if (tree_p_.size() == 0 || tree_q_.size() == 0) return Status::OK();

  const BufferStats before_p = tree_p_.buffer()->ThreadStats();
  const BufferStats before_q = tree_q_.buffer()->ThreadStats();
  prefetch_.Configure(tree_p_.buffer(), tree_q_.buffer(),
                      options_.prefetch_window,
                      accounting_ ? context_ : nullptr);

  const int root_level = PairLevel(tree_p_.height() - 1, tree_q_.height() - 1);
  // The root pair enters the search unconditionally: it is the one pair
  // "considered" that no GenerateCandidates call accounts for.
  if (profile_ != nullptr) profile_->Considered(root_level, 1);

  // Pre-trip check (a pre-cancelled or pre-expired query must not touch
  // the trees at all). Nothing was examined, so certify nothing: bound 0
  // at every rank.
  Status engine_status;
  if (ShouldStop(0)) {
    FoldFrontier(objective_.WeakestKey(),
                 std::numeric_limits<uint64_t>::max());
    if (profile_ != nullptr) profile_->Deferred(root_level, 1);
  } else {
    QueryContext* read_ctx = accounting_ ? context_ : nullptr;
    Rect mbr_p, mbr_q;
    Status root_status = tree_p_.RootMbr(&mbr_p, read_ctx);
    if (root_status.ok()) root_status = tree_q_.RootMbr(&mbr_q, read_ctx);
    if (root_status.code() == StatusCode::kDeadlineExceeded) {
      // Storage abandoned a retry before anything was examined: partial
      // with a vacuous certificate, same as a pre-expired deadline.
      stop_ = StopCause::kDeadline;
      FoldFrontier(objective_.WeakestKey(),
                   std::numeric_limits<uint64_t>::max());
      if (profile_ != nullptr) profile_->Deferred(root_level, 1);
    } else if (!root_status.ok()) {
      engine_status = root_status;
    } else {
      tie_context_.root_area_p = mbr_p.Area();
      tie_context_.root_area_q = mbr_q.Area();
      tie_context_.metric = options_.metric;

      NodeRef root_p{tree_p_.root_page(), tree_p_.height() - 1, mbr_p, 1,
                     tree_p_.size()};
      NodeRef root_q{tree_q_.root_page(), tree_q_.height() - 1, mbr_q, 1,
                     tree_q_.size()};

      if (options_.algorithm == CpqAlgorithm::kHeap) {
        engine_status = RunHeap(root_p, root_q);
      } else {
        engine_status = ProcessPairRecursive(root_p, root_q);
      }
    }
  }

  if (prefetch_.enabled()) {
    // Settle speculation before reading the deltas: waits out in-flight
    // reads and discards staged-but-unclaimed pages as waste, so the
    // accounting identity holds at query end. Runs on the error paths too:
    // staged entries record this query's context as their issuer, which
    // must not outlive the context. (Concurrent queries sharing a buffer
    // may drain each other's staged pages — results are unaffected, the
    // victims just fall back to synchronous reads.)
    tree_p_.buffer()->DrainPrefetches();
    if (tree_q_.buffer() != tree_p_.buffer()) {
      tree_q_.buffer()->DrainPrefetches();
    }
  }
  KCPQ_RETURN_IF_ERROR(engine_status);

  const BufferStats after_p = tree_p_.buffer()->ThreadStats();
  const BufferStats after_q = tree_q_.buffer()->ThreadStats();
  stats_->disk_accesses_p = after_p.misses - before_p.misses;
  stats_->disk_accesses_q = after_q.misses - before_q.misses;
  stats_->node_accesses = node_accesses_;
  // Issue and claim both happen on the query's thread, so these deltas are
  // exact per query; don't double-count a self-join's shared buffer.
  stats_->prefetch_issued = after_p.prefetch_issued - before_p.prefetch_issued;
  stats_->prefetch_hits = after_p.prefetch_hits - before_p.prefetch_hits;
  if (tree_q_.buffer() != tree_p_.buffer()) {
    stats_->prefetch_issued +=
        after_q.prefetch_issued - before_q.prefetch_issued;
    stats_->prefetch_hits += after_q.prefetch_hits - before_q.prefetch_hits;
  }

  FinalizeQualityAndTrace();

  *out = std::move(results_).Extract();
  return Status::OK();
}

void CpqEngine::FinalizeQualityAndTrace() {
  // Quality certificate. A completed query keeps the default (exact,
  // bound = +inf). A stopped one reports the frontier minimum: no pair the
  // traversal never saw can be closer than it (docs/robustness.md). The
  // stop can still be provably harmless — frontier empty, or every
  // frontier pair already worse than the full K-heap — in which case the
  // partial result *is* a true answer and is_exact stays set.
  stats_->quality.stop_cause = stop_;
  stats_->quality.pairs_found = results_.size();
  stats_->quality.bound_is_upper = objective_.BoundIsUpper();
  if (stop_ != StopCause::kNone) {
    stats_->quality.guaranteed_lower_bound =
        objective_.KeyToDistance(frontier_min_pow_);
    stats_->quality.is_exact =
        frontier_min_pow_ == std::numeric_limits<double>::infinity() ||
        (results_.full() && results_.Bound() <= frontier_min_pow_);
    // Per-rank refinement: bound r certifies that at most r missing
    // true-answer pairs can beat it — closer for minimizing families,
    // farther for kFarthest (capacity-weighted frontier profile; proof in
    // docs/robustness.md). KeyToDistance flips negated farthest keys back
    // to distances, so the reported values descend under bound_is_upper.
    const std::vector<double> pow_bounds = certificate_.RankBoundsPow();
    stats_->quality.rank_lower_bounds.reserve(pow_bounds.size());
    for (const double b : pow_bounds) {
      stats_->quality.rank_lower_bounds.push_back(
          objective_.KeyToDistance(b));
    }
  }

  if (trace_ != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kQuery;
    e.ts_ns = 0;
    e.dur_ns = trace_->NowNs();
    e.value = static_cast<double>(options_.k);
    e.a = stats_->node_pairs_processed;
    e.b = node_accesses_;
    trace_->Record(e);
  }
}

void CpqEngine::NoteBoundImprovement() {
  if (bound_ >= reported_bound_) return;
  reported_bound_ = bound_;
  // The profile/trace report in power space; for kFarthest the key is the
  // negated power, so flip the sign back for display (a tightening bound
  // then *rises* toward the K-th farthest distance, as expected).
  const double display = objective_.minimizing() ? bound_ : -bound_;
  if (profile_ != nullptr) {
    profile_->BoundUpdate(stats_->node_pairs_processed, display);
  }
  if (trace_ != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kBoundUpdate;
    e.bound = display;
    e.a = stats_->node_pairs_processed;
    trace_->RecordNow(e);
  }
  if (obs::QueryObservation* live = context_->observation(); live != nullptr) {
    // The live registry reports real distance units (what the final
    // quality certificate will say), not the engine's power-space key.
    live->NoteBound(objective_.KeyToDistance(bound_));
  }
}

bool CpqEngine::ShouldStop(uint64_t extra_bytes) {
  if (stop_ != StopCause::kNone) return true;
  if (!accounting_) return false;
  // The context checks the *unified* footprint: the engine bytes recorded
  // here plus every distinct buffer page the query has read.
  stop_ = context_->Check(node_accesses_, candidate_bytes_ + extra_bytes);
  return stop_ != StopCause::kNone;
}

Status CpqEngine::ReadPair(NodeRef* ref_p, NodeRef* ref_q, Node* node_p,
                           Node* node_q) {
  QueryContext* read_ctx = accounting_ ? context_ : nullptr;
  KCPQ_RETURN_IF_ERROR(tree_p_.ReadNode(ref_p->page, node_p, read_ctx));
  KCPQ_RETURN_IF_ERROR(tree_q_.ReadNode(ref_q->page, node_q, read_ctx));
  ++stats_->node_pairs_processed;
  node_accesses_ += 2;
  // Refresh the refs with exact facts from the pages (roots start with
  // placeholder min_points; fixed nodes get tighter counts).
  ref_p->level = node_p->level;
  ref_q->level = node_q->level;
  ref_p->mbr = node_p->ComputeMbr();
  ref_q->mbr = node_q->ComputeMbr();
  ref_p->min_points = MinPointsOfNode(*node_p, tree_p_.min_entries());
  ref_q->min_points = MinPointsOfNode(*node_q, tree_q_.min_entries());
  ref_p->max_points = MaxPointsOfNode(*node_p, tree_p_.max_entries());
  ref_q->max_points = MaxPointsOfNode(*node_q, tree_q_.max_entries());
  if (profile_ != nullptr) {
    profile_->Visited(PairLevel(node_p->level, node_q->level), 1);
  }
  if (trace_ != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kDescend;
    e.level_p = static_cast<int16_t>(node_p->level);
    e.level_q = static_cast<int16_t>(node_q->level);
    e.bound = bound_;
    e.a = ref_p->page;
    e.b = ref_q->page;
    trace_->RecordNow(e);
  }
  return Status::OK();
}

void CpqEngine::ProcessLeaves(const Node& node_p, const Node& node_q,
                              bool same_node) {
  // Leaf entries are degenerate rects for point data and real boxes for
  // extended objects; the object distance is MINMINDIST of the rects
  // (which collapses to the point distance for points), reported via a
  // closest point pair.
  //
  // Self-join: symmetric node pairs were skipped at generation time, so a
  // cross-node unordered object pair reaches this loop exactly once (in
  // arbitrary order — normalize on output); within one node, the id filter
  // keeps each unordered pair once and drops reflexive pairs. The filter
  // lives inside `consider` so both kernels apply identical rules.
  const auto consider = [&](const Entry& ep, const Entry& eq) {
    if (options_.self_join) {
      if (same_node) {
        if (ep.id >= eq.id) return true;
      } else if (ep.id == eq.id) {
        return true;
      }
    }
    if (!objective_.LeafPairEligible(ep.rect, eq.rect)) return true;
    ++stats_->point_distance_computations;
    const double key = objective_.LeafKey(ep.rect, eq.rect);
    if (key >= results_.Bound()) return true;  // cheap reject before points
    Point p, q;
    ClosestPoints(ep.rect, eq.rect, &p, &q);
    if (options_.self_join && ep.id > eq.id) {
      results_.Offer(key, q, p, eq.id, ep.id);
    } else {
      results_.Offer(key, p, q, ep.id, eq.id);
    }
    return true;
  };

  const uint64_t kernel_start_ns =
      trace_ != nullptr ? trace_->NowNs() : 0;

  // The sweep's skip test lower-bounds a pair's *distance* by its sweep-axis
  // gap, which only implies `key >= Bound()` for minimizing objectives —
  // kFarthest falls back to the nested loop regardless of the option.
  if (options_.leaf_kernel == LeafKernel::kPlaneSweep &&
      objective_.SweepUsable()) {
    // Pairs the sweep skips have sweep-axis separation alone >= the result
    // heap's bound, so their full distance would fail the `key >= Bound()`
    // reject above — identical results, fewer distance computations. The
    // bound is re-read per skip test, so pairs offered early in this very
    // sweep tighten it for the rest.
    const uint64_t total =
        static_cast<uint64_t>(node_p.entries.size()) * node_q.entries.size();
    const uint64_t visited = PlaneSweepPairs(
        node_p.entries, node_q.entries, options_.metric, /*strict=*/false,
        &sweep_scratch_, [](const Entry& e) -> const Rect& { return e.rect; },
        [&] { return results_.Bound(); }, consider);
    stats_->leaf_pairs_skipped += total - visited;
  } else {
    for (const Entry& ep : node_p.entries) {
      for (const Entry& eq : node_q.entries) {
        consider(ep, eq);
      }
    }
  }
  bound_ = std::min(bound_, results_.Bound());
  NoteBoundImprovement();
  if (trace_ != nullptr) {
    obs::TraceEvent e;
    e.kind = obs::TraceEventKind::kLeafKernel;
    e.ts_ns = kernel_start_ns;
    const uint64_t end = trace_->NowNs();
    e.dur_ns = end > kernel_start_ns ? end - kernel_start_ns : 1;
    e.bound = bound_;
    e.a = node_p.entries.size();
    e.b = node_q.entries.size();
    trace_->Record(e);
  }
}

void CpqEngine::GenerateCandidates(const NodeRef& ref_p, const Node& node_p,
                                   const NodeRef& ref_q, const Node& node_q,
                                   DescendChoice choice,
                                   std::vector<Candidate>* out) {
  out->clear();
  const bool expand_p = choice == DescendChoice::kBoth ||
                        choice == DescendChoice::kFirstOnly;
  const bool expand_q = choice == DescendChoice::kBoth ||
                        choice == DescendChoice::kSecondOnly;

  // The fixed side contributes itself as the single "child".
  const uint64_t child_min_p =
      MinPointsAtLevel(node_p.level - 1, tree_p_.min_entries());
  const uint64_t child_min_q =
      MinPointsAtLevel(node_q.level - 1, tree_q_.min_entries());
  const uint64_t child_max_p =
      MaxPointsAtLevel(node_p.level - 1, tree_p_.max_entries());
  const uint64_t child_max_q =
      MaxPointsAtLevel(node_q.level - 1, tree_q_.max_entries());

  auto make_ref_p = [&](size_t i) {
    return expand_p ? NodeRef{node_p.entries[i].id, node_p.level - 1,
                              node_p.entries[i].rect, child_min_p,
                              child_max_p}
                    : ref_p;
  };
  auto make_ref_q = [&](size_t j) {
    return expand_q ? NodeRef{node_q.entries[j].id, node_q.level - 1,
                              node_q.entries[j].rect, child_min_q,
                              child_max_q}
                    : ref_q;
  };

  const size_t np = expand_p ? node_p.entries.size() : 1;
  const size_t nq = expand_q ? node_q.entries.size() : 1;
  out->reserve(np * nq);
  const bool score_ties = !options_.tie_chain.empty() &&
                          (options_.algorithm == CpqAlgorithm::kSortedDistances ||
                           options_.algorithm == CpqAlgorithm::kHeap);
  for (size_t i = 0; i < np; ++i) {
    const NodeRef cp = make_ref_p(i);
    // Range-restricted objectives pre-prune subtrees that cannot contain a
    // qualifying point (MBR strictly outside the query rect). Skipped
    // children never enter the candidate list, so the EXPLAIN accounting
    // identity (considered = visited + pruned + deferred) holds as-is.
    if (!objective_.SubtreeEligible(cp.mbr)) continue;
    for (size_t j = 0; j < nq; ++j) {
      const NodeRef cq = make_ref_q(j);
      if (!objective_.SubtreeEligible(cq.mbr)) continue;
      // Self-join: when both sides expand the *same* node, the child pairs
      // (i, j) and (j, i) both arise here and cover the same unordered
      // object pairs — keep only the page-ordered one (nearly halves the
      // traversal). Distinct parents already appear in exactly one
      // orientation, inherited from the ancestor where they split apart.
      if (options_.self_join && ref_p.page == ref_q.page &&
          cp.page > cq.page) {
        continue;
      }
      Candidate cand;
      cand.p = cp;
      cand.q = cq;
      cand.key = objective_.NodeKey(cp.mbr, cq.mbr);
      cand.min_pairs = cp.min_points * cq.min_points;
      cand.max_pairs = SaturatingMul(cp.max_points, cq.max_points);
      if (score_ties) {
        ComputeTieScores(cp.mbr, cq.mbr, options_.tie_chain, tie_context_,
                         cand.tie);
      }
      out->push_back(cand);
    }
  }
  stats_->candidate_pairs_generated += out->size();
  if (profile_ != nullptr) {
    // All candidates of one expansion share their level: each expanded
    // side steps down one level, a fixed side stays.
    profile_->Considered(
        PairLevel(expand_p ? node_p.level - 1 : node_p.level,
                  expand_q ? node_q.level - 1 : node_q.level),
        out->size());
  }
}

void CpqEngine::TightenBoundFromCandidates(
    const std::vector<Candidate>& candidates) {
  if (candidates.empty()) return;
  // Range-restricted objectives cannot count pairs toward the bound: the
  // guaranteed pairs beneath a candidate may all lie outside the rect.
  if (!objective_.CanTightenFromCapacities()) return;
  if (objective_.minimizing() && options_.k == 1) {
    // 1-CPQ special case (Section 3.3): at least one point pair beneath
    // each candidate lies within its MINMAXDIST.
    for (const Candidate& c : candidates) {
      bound_ = std::min(bound_, MinMaxDistPow(c.p.mbr, c.q.mbr,
                                              options_.metric));
    }
    return;
  }
  if (options_.k > 1 && !options_.use_maxmaxdist_pruning) return;
  // K > 1 (Section 3.8): every point pair beneath a candidate is within its
  // MAXMAXDIST; accumulate candidates in ascending MAXMAXDIST until the
  // guaranteed pair count reaches K — that MAXMAXDIST bounds the K-th
  // closest distance. kFarthest mirrors this in key space: every pair
  // beneath a candidate is at least its MINMINDIST away, so the tighten key
  // is -MINMINDIST and the same ascending accumulation (= descending
  // MINMINDIST) bounds the K-th farthest distance from below. (For
  // kFarthest this covers K = 1 too — the exact mirror of MINMAXDIST.)
  maxmax_scratch_.clear();
  maxmax_scratch_.reserve(candidates.size());
  for (const Candidate& c : candidates) {
    const double tighten_key =
        objective_.minimizing()
            ? MaxMaxDistPow(c.p.mbr, c.q.mbr, options_.metric)
            : -MinMinDistPow(c.p.mbr, c.q.mbr, options_.metric);
    maxmax_scratch_.emplace_back(tighten_key, c.min_pairs);
  }
  std::sort(maxmax_scratch_.begin(), maxmax_scratch_.end());
  uint64_t pairs = 0;
  for (const auto& [tighten_key, count] : maxmax_scratch_) {
    pairs += count;
    if (pairs >= options_.k) {
      bound_ = std::min(bound_, tighten_key);
      break;
    }
  }
}

Status CpqEngine::ProcessPairRecursive(const NodeRef& ref_p,
                                       const NodeRef& ref_q) {
  // Stop check at node-pair granularity, *before* the reads: a stopped
  // query folds this unexpanded pair into the frontier bound instead.
  if (ShouldStop(0)) {
    FoldFrontier(objective_.NodeKey(ref_p.mbr, ref_q.mbr),
                 SaturatingMul(ref_p.max_points, ref_q.max_points));
    if (profile_ != nullptr) {
      profile_->Deferred(PairLevel(ref_p.level, ref_q.level), 1);
    }
    return Status::OK();
  }

  NodeRef p = ref_p;
  NodeRef q = ref_q;
  Node node_p, node_q;
  const Status read_status = ReadPair(&p, &q, &node_p, &node_q);
  if (read_status.code() == StatusCode::kDeadlineExceeded) {
    // The storage stack abandoned a retry the deadline could not cover.
    // The pair stays unexpanded: latch the deadline stop and fold it.
    stop_ = StopCause::kDeadline;
    FoldFrontier(objective_.NodeKey(ref_p.mbr, ref_q.mbr),
                 SaturatingMul(ref_p.max_points, ref_q.max_points));
    if (profile_ != nullptr) {
      // ReadPair failed before recording a visit, so the pair is deferred.
      profile_->Deferred(PairLevel(ref_p.level, ref_q.level), 1);
    }
    return Status::OK();
  }
  KCPQ_RETURN_IF_ERROR(read_status);

  const DescendChoice choice =
      ChooseDescend(node_p.level, node_q.level, options_.height_strategy);
  if (choice == DescendChoice::kLeaves) {
    ProcessLeaves(node_p, node_q, p.page == q.page);
    return Status::OK();
  }

  std::vector<Candidate> candidates;
  GenerateCandidates(p, node_p, q, node_q, choice, &candidates);
  if (TightensBound()) {
    TightenBoundFromCandidates(candidates);
    NoteBoundImprovement();
  }
  const uint64_t frame_bytes = candidates.size() * sizeof(Candidate);
  candidate_bytes_ += frame_bytes;

  if (options_.algorithm == CpqAlgorithm::kSortedDistances) {
    std::sort(candidates.begin(), candidates.end(), CandidateLess());
  }
  if (prefetch_.enabled() && !candidates.empty()) {
    // Speculate on the first W surviving candidates — for STD this is the
    // exact descend order; for the unsorted algorithms it is generation
    // order, which is still the processing order of this frame.
    prefetch_.Clear();
    size_t added = 0;
    for (const Candidate& cand : candidates) {
      if (added >= prefetch_.window()) break;
      if (Prunes() && cand.key > bound_) continue;
      prefetch_.Add(cand.key, cand.p.page, cand.q.page);
      ++added;
    }
    prefetch_.Issue();
  }
  for (const Candidate& cand : candidates) {
    // Re-test against T at descend time: T may have tightened while the
    // earlier candidates of this very list were processed (the mechanism
    // that makes the ascending-MINMINDIST order pay off).
    if (Prunes() && cand.key > bound_) {
      ++stats_->candidate_pairs_pruned;
      if (profile_ != nullptr) {
        profile_->PrunedIneq1(PairLevel(cand.p.level, cand.q.level), 1);
      }
      if (trace_ != nullptr) {
        obs::TraceEvent e;
        e.kind = obs::TraceEventKind::kPrune;
        e.level_p = static_cast<int16_t>(cand.p.level);
        e.level_q = static_cast<int16_t>(cand.q.level);
        e.value = cand.key;
        e.bound = bound_;
        trace_->RecordNow(e);
      }
      continue;
    }
    // Once stopped (possibly by a deeper recursion), drain: the remaining
    // un-pruned candidates become frontier, not work.
    if (stop_ != StopCause::kNone) {
      FoldFrontier(cand.key, cand.max_pairs);
      if (profile_ != nullptr) {
        profile_->Deferred(PairLevel(cand.p.level, cand.q.level), 1);
      }
      continue;
    }
    const Status s = ProcessPairRecursive(cand.p, cand.q);
    if (!s.ok()) {
      candidate_bytes_ -= frame_bytes;
      return s;
    }
  }
  candidate_bytes_ -= frame_bytes;
  return Status::OK();
}

Status CpqEngine::RunHeap(const NodeRef& root_p, const NodeRef& root_q) {
  // Min-heap of node pairs by (MINMINDIST, tie chain); CP1-CP5 of
  // Section 3.5. Open-coded over a vector with std::push_heap / pop_heap —
  // the exact operations std::priority_queue is specified to perform, so
  // the pop order is bit-identical to the previous implementation — which
  // exposes the underlying array: the prefetch scheduler peeks at the
  // frontier's best pairs without disturbing the heap.
  struct CandidateGreater {
    bool operator()(const Candidate& a, const Candidate& b) const {
      return CandidateLess()(b, a);
    }
  };
  const CandidateGreater heap_order{};
  std::vector<Candidate> heap;

  Candidate first;
  first.p = root_p;
  first.q = root_q;
  first.key = objective_.NodeKey(root_p.mbr, root_q.mbr);
  first.max_pairs = SaturatingMul(root_p.max_points, root_q.max_points);
  heap.push_back(first);

  // On a stop, the popped pair plus everything still queued is the
  // frontier; fold it all so the per-rank certificate sees the full
  // capacity profile (the scalar bound needs only the popped key — the
  // heap pops in ascending MINMINDIST — but rank bounds improve with
  // every entry). FoldFrontier and the profile's per-level counts are
  // order-insensitive, so the remaining entries are walked in array
  // order, no pops needed.
  const auto drain_into_certificate = [&](const Candidate& popped) {
    FoldFrontier(popped.key, popped.max_pairs);
    if (profile_ != nullptr) {
      profile_->Deferred(PairLevel(popped.p.level, popped.q.level), 1);
    }
    for (const Candidate& c : heap) {
      FoldFrontier(c.key, c.max_pairs);
      if (profile_ != nullptr) {
        profile_->Deferred(PairLevel(c.p.level, c.q.level), 1);
      }
    }
    heap.clear();
  };

  std::vector<Candidate> candidates;
  std::vector<uint32_t> spec_order;
  while (!heap.empty()) {
    stats_->max_heap_size = std::max<uint64_t>(stats_->max_heap_size,
                                               heap.size());
    if (prefetch_.enabled()) {
      // Speculate on the frontier's best W pairs — including heap[0], the
      // pair read next, so even a child pushed by the previous expansion
      // (the best-first descent chain, where the next pop is brand new)
      // has its reads in flight before ReadPair demands them. The W
      // smallest entries of a binary heap all live in the first 2^W - 1
      // array slots, so a bounded prefix scan finds the exact top-W for
      // W <= 9 and a close approximation above (speculation tolerates
      // approximation; the claim path does not care which pages arrive).
      //
      // Selection must use the pop order itself (CandidateLess: MINMINDIST
      // plus the tie chain) — with overlapping data most frontier keys tie
      // at 0, and any other tie-break speculates on pairs the heap will
      // not pop next. The rank is passed as the scheduler key so pages of
      // the nearest pops are submitted, and therefore complete, first.
      prefetch_.Clear();
      const size_t scan = std::min<size_t>(heap.size(), 512);
      spec_order.clear();
      for (uint32_t i = 0; i < scan; ++i) {
        if (heap[i].key > bound_) continue;  // would be CP5-cut
        spec_order.push_back(i);
      }
      const size_t take = std::min(spec_order.size(), prefetch_.window());
      std::partial_sort(spec_order.begin(),
                        spec_order.begin() + static_cast<ptrdiff_t>(take),
                        spec_order.end(), [&heap](uint32_t a, uint32_t b) {
                          return CandidateLess()(heap[a], heap[b]);
                        });
      for (size_t r = 0; r < take; ++r) {
        const Candidate& c = heap[spec_order[r]];
        prefetch_.Add(static_cast<double>(r), c.p.page, c.q.page);
      }
      prefetch_.Issue();
    }
    const Candidate top = heap.front();
    std::pop_heap(heap.begin(), heap.end(), heap_order);
    heap.pop_back();
    if (trace_ != nullptr) {
      obs::TraceEvent e;
      e.kind = obs::TraceEventKind::kHeapPop;
      e.level_p = static_cast<int16_t>(top.p.level);
      e.level_q = static_cast<int16_t>(top.q.level);
      e.value = top.key;
      e.bound = bound_;
      trace_->RecordNow(e);
    }
    if (top.key > bound_) {
      // Nothing better can remain (CP5): the popped pair and everything
      // still queued are cut off by the best-first order.
      if (profile_ != nullptr) {
        profile_->PrunedOrder(PairLevel(top.p.level, top.q.level), 1);
        for (const Candidate& c : heap) {
          profile_->PrunedOrder(PairLevel(c.p.level, c.q.level), 1);
        }
      }
      break;
    }
    if (ShouldStop(heap.size() * sizeof(Candidate))) {
      drain_into_certificate(top);
      break;
    }

    NodeRef p = top.p;
    NodeRef q = top.q;
    Node node_p, node_q;
    const Status read_status = ReadPair(&p, &q, &node_p, &node_q);
    if (read_status.code() == StatusCode::kDeadlineExceeded) {
      stop_ = StopCause::kDeadline;
      drain_into_certificate(top);
      break;
    }
    KCPQ_RETURN_IF_ERROR(read_status);

    const DescendChoice choice =
        ChooseDescend(node_p.level, node_q.level, options_.height_strategy);
    if (choice == DescendChoice::kLeaves) {
      ProcessLeaves(node_p, node_q, p.page == q.page);
      continue;
    }
    GenerateCandidates(p, node_p, q, node_q, choice, &candidates);
    TightenBoundFromCandidates(candidates);
    NoteBoundImprovement();
    for (const Candidate& cand : candidates) {
      if (cand.key > bound_) {
        ++stats_->candidate_pairs_pruned;
        if (profile_ != nullptr) {
          profile_->PrunedIneq1(PairLevel(cand.p.level, cand.q.level), 1);
        }
        if (trace_ != nullptr) {
          obs::TraceEvent e;
          e.kind = obs::TraceEventKind::kPrune;
          e.level_p = static_cast<int16_t>(cand.p.level);
          e.level_q = static_cast<int16_t>(cand.q.level);
          e.value = cand.key;
          e.bound = bound_;
          trace_->RecordNow(e);
        }
        continue;
      }
      if (trace_ != nullptr) {
        obs::TraceEvent e;
        e.kind = obs::TraceEventKind::kHeapPush;
        e.level_p = static_cast<int16_t>(cand.p.level);
        e.level_q = static_cast<int16_t>(cand.q.level);
        e.value = cand.key;
        e.bound = bound_;
        trace_->RecordNow(e);
      }
      heap.push_back(cand);
      std::push_heap(heap.begin(), heap.end(), heap_order);
    }
  }
  return Status::OK();
}

}  // namespace cpq_internal
}  // namespace kcpq
