// Analytical cost model for K-CPQ disk accesses (the paper's future-work
// direction (b), Section 6: "the analytical study of CPQs, extending
// related work in spatial joins [Theodoridis et al., ICDE'98] and
// nearest-neighbor queries").
//
// The model assumes two uniformly distributed point sets in unit-square
// workspaces that share an `overlap` fraction of their width, indexed by
// R*-trees of fanout M at fill factor f:
//
//  1. Expected K-th closest-pair distance d_K.
//     Overlapping workspaces (area A = overlap): the number of point pairs
//     within distance r is ~ n_p n_q pi r^2 overlap / A... which reduces to
//     C(r) = n_p n_q pi r^2 overlap, so  d_K = sqrt(K / (pi n_p n_q o)).
//     Disjoint-but-adjacent workspaces: only points near the shared border
//     pair up; C(r) ~ n_p n_q r^3, so  d_K = (K / (n_p n_q))^(1/3).
//
//  2. Node pairs visited per level. A pruning algorithm must visit every
//     node pair with MINMINDIST <= d_K. At level l the ~N_l(n) = n / (fM)^(l+1)
//     nodes tile their workspace with square MBRs of side s_l = sqrt(1/N_l),
//     so a given P-node interacts with Q-nodes whose centers fall in a
//     square of side s_P + s_Q + 2 d_K. Integrating over the overlap region
//     (or the border strip when disjoint) gives the per-level pair count;
//     each visited pair costs two node reads.
//
// The model is deliberately coarse (uniformity, square MBRs, no buffer);
// bench_costmodel compares it against measured runs and EXPERIMENTS.md
// discusses the fit. Its intended use is what the paper names: query
// optimization — choosing between CPQ plans without running them.

#ifndef KCPQ_CPQ_COST_MODEL_H_
#define KCPQ_CPQ_COST_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace kcpq {

struct CostModelInput {
  uint64_t n_p = 0;
  uint64_t n_q = 0;
  /// Shared fraction of the two unit workspaces' width, in [0, 1].
  double overlap = 1.0;
  uint64_t k = 1;
  /// R-tree fanout (node capacity M); 21 for the paper's 1 KiB pages.
  uint64_t fanout = 21;
  /// Average node fill factor; ~0.70 for R*-trees built by insertion.
  double fill = 0.70;
};

struct CostModelEstimate {
  /// Predicted disk accesses (both trees, no buffer).
  double disk_accesses = 0.0;
  /// Predicted K-th closest-pair distance.
  double kth_distance = 0.0;
  /// Predicted node-pair visits per level (index 0 = leaf level).
  std::vector<double> node_pairs_per_level;
};

/// Evaluates the model. Fails on invalid inputs (zero cardinalities,
/// overlap outside [0,1], zero k/fanout, fill outside (0,1]).
Result<CostModelEstimate> EstimateCpqCost(const CostModelInput& input);

}  // namespace kcpq

#endif  // KCPQ_CPQ_COST_MODEL_H_
