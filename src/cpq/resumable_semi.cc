#include "cpq/resumable_semi.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "geometry/metrics.h"
#include "obs/kcpq_metrics.h"

namespace kcpq {

namespace {

// Mirrors cpq.cc's file-local FoldCpqMetrics with seconds < 0 (the
// blocking SemiClosestPairs folds exactly this set; duplication beats
// widening cpq.cc's internal surface). Batch latency is folded by the
// executor, so no per-family seconds here — same as the blocking semi.
void FoldSemiMetrics(const CpqStats& s) {
#if KCPQ_METRICS
  if (!obs::Enabled()) return;
  const obs::KcpqMetrics& m = obs::KcpqMetrics::Get();
  m.cpq_queries_total->Increment();
  m.cpq_node_pairs_total->Add(s.node_pairs_processed);
  m.cpq_candidates_generated_total->Add(s.candidate_pairs_generated);
  m.cpq_candidates_pruned_total->Add(s.candidate_pairs_pruned);
  m.cpq_distance_computations_total->Add(s.point_distance_computations);
  m.cpq_leaf_pairs_skipped_total->Add(s.leaf_pairs_skipped);
  m.cpq_query_node_accesses->Observe(static_cast<double>(s.node_accesses));
#else
  (void)s;
#endif
}

uint64_t ElapsedNs(std::chrono::steady_clock::time_point from,
                   std::chrono::steady_clock::time_point to) {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count();
  return d > 0 ? static_cast<uint64_t>(d) : 0;
}

}  // namespace

ResumableSemiQuery::ResumableSemiQuery(const RStarTree& tree_p,
                                       const RStarTree& tree_q,
                                       CpqStats* stats,
                                       const QueryControl& control,
                                       QueryContext* context, Waker waker)
    : tree_p_(tree_p),
      tree_q_(tree_q),
      stats_(stats != nullptr ? stats : &local_stats_),
      local_ctx_(control),
      ctx_(context != nullptr ? context : &local_ctx_),
      accounting_(context != nullptr || !ctx_->control().IsUnlimited()),
      waker_(std::move(waker)) {}

ResumableSemiQuery::~ResumableSemiQuery() = default;

ResumableTask::StepResult ResumableSemiQuery::Park(PageId page) {
  ++stats_->io_parks;
  park_pending_ = true;
  park_start_ = std::chrono::steady_clock::now();
  (void)page;
  return StepResult::kParked;
}

ResumableTask::StepResult ResumableSemiQuery::Fail(Status s) {
  final_status_ = std::move(s);
  phase_ = Phase::kDone;
  return StepResult::kDone;
}

void ResumableSemiQuery::CountRead(const BufferManager::TryReadOutcome& outcome,
                                   bool is_p) {
  if (outcome.hit) return;
  if (tree_p_.buffer() == tree_q_.buffer()) {
    ++misses_p_;
    ++misses_q_;
  } else if (is_p) {
    ++misses_p_;
  } else {
    ++misses_q_;
  }
  if (outcome.prefetch_claim) ++prefetch_hits_;
}

bool ResumableSemiQuery::StartPhase() {
  *stats_ = CpqStats{};
  // Trivial queries return the blocking path's untouched default stats —
  // no epilogue, no metric fold.
  if (tree_p_.size() == 0 || tree_q_.size() == 0) return false;
  out_.reserve(tree_p_.size());
  // Pre-trip check: a pre-cancelled or pre-expired query touches no pages.
  stop_ = accounting_ ? ctx_->Check(0, 0) : StopCause::kNone;
  if (stop_ != StopCause::kNone) {
    phase_ = Phase::kFinish;
  } else {
    stack_.push_back(tree_p_.root_page());
    phase_ = Phase::kScanRead;
  }
  return true;
}

void ResumableSemiQuery::FinishPhase() {
  std::sort(out_.begin(), out_.end(),
            [](const PairResult& a, const PairResult& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.p_id < b.p_id;
            });
  stats_->disk_accesses_p = misses_p_;
  stats_->disk_accesses_q = misses_q_;
  stats_->node_accesses = node_accesses_;
  stats_->prefetch_hits = prefetch_hits_;
  stats_->quality.stop_cause = stop_;
  stats_->quality.pairs_found = out_.size();
  if (stop_ != StopCause::kNone) {
    // Same certificate rule as the blocking path: a per-point NN result
    // says nothing about the unvisited P points, so the only honest
    // global lower bound is zero.
    stats_->quality.guaranteed_lower_bound = 0.0;
    stats_->quality.is_exact = false;
  }
  FoldSemiMetrics(*stats_);
}

ResumableTask::StepResult ResumableSemiQuery::Step() {
  if (park_pending_) {
    park_pending_ = false;
    stats_->io_parked_ns +=
        ElapsedNs(park_start_, std::chrono::steady_clock::now());
  }

  for (;;) {
    switch (phase_) {
      case Phase::kStart: {
        if (!StartPhase()) {
          final_status_ = Status::OK();
          phase_ = Phase::kDone;
          return StepResult::kDone;
        }
        continue;
      }
      case Phase::kScanRead: {
        // ScanLeaves' explicit LIFO stack. The page stays on the stack
        // until its read lands, so a park simply re-reads it.
        if (stack_.empty()) {
          phase_ = Phase::kFinish;
          continue;
        }
        const PageId page = stack_.back();
        BufferManager::TryReadOutcome outcome;
        const Status s = tree_p_.TryReadNode(
            page, &node_p_, accounting_ ? ctx_ : nullptr, waker_, &outcome);
        if (outcome.parked) return Park(page);
        if (s.code() == StatusCode::kDeadlineExceeded) {
          stop_ = StopCause::kDeadline;
          phase_ = Phase::kFinish;
          continue;
        }
        if (!s.ok()) return Fail(s);
        CountRead(outcome, /*is_p=*/true);
        stack_.pop_back();
        if (!node_p_.IsLeaf()) {
          // Internal P nodes are read but not charged to node_accesses,
          // exactly like the blocking ScanLeaves traversal.
          for (const Entry& e : node_p_.entries) stack_.push_back(e.id);
          continue;
        }
        ++node_accesses_;  // the P leaf itself
        leaf_mbr_ = node_p_.ComputeMbr();
        best_.assign(node_p_.entries.size(),
                     std::numeric_limits<double>::infinity());
        best_entry_.assign(node_p_.entries.size(), Entry{});
        queue_ = decltype(queue_){};
        queue_.push(QueueItem{0.0, tree_q_.root_page()});
        phase_ = Phase::kGroupLoop;
        continue;
      }
      case Phase::kGroupLoop: {
        if (queue_.empty()) {
          phase_ = Phase::kGroupEmit;
          continue;
        }
        const QueueItem item = queue_.top();
        queue_.pop();
        group_worst_ = *std::max_element(best_.begin(), best_.end());
        if (item.key > group_worst_) {  // no leaf point can improve
          phase_ = Phase::kGroupEmit;
          continue;
        }
        if (accounting_) {
          // Stop poll BEFORE the read; a park resumes at the read and
          // never re-polls (the blocking loop checks exactly once per
          // popped node).
          stop_ = ctx_->Check(node_accesses_, out_.size() * sizeof(PairResult));
          if (stop_ != StopCause::kNone) {
            phase_ = Phase::kFinish;
            continue;
          }
        }
        group_page_ = item.page;
        phase_ = Phase::kGroupRead;
        continue;
      }
      case Phase::kGroupRead: {
        BufferManager::TryReadOutcome outcome;
        const Status s =
            tree_q_.TryReadNode(group_page_, &node_q_,
                                accounting_ ? ctx_ : nullptr, waker_, &outcome);
        if (outcome.parked) return Park(group_page_);
        if (s.code() == StatusCode::kDeadlineExceeded) {
          stop_ = StopCause::kDeadline;
          phase_ = Phase::kFinish;
          continue;
        }
        if (!s.ok()) return Fail(s);
        CountRead(outcome, /*is_p=*/false);
        ++stats_->node_pairs_processed;
        ++node_accesses_;
        if (node_q_.IsLeaf()) {
          for (const Entry& eq : node_q_.entries) {
            for (size_t i = 0; i < node_p_.entries.size(); ++i) {
              ++stats_->point_distance_computations;
              const double d2 =
                  MinMinDistSquared(node_p_.entries[i].rect, eq.rect);
              if (d2 < best_[i]) {
                best_[i] = d2;
                best_entry_[i] = eq;
              }
            }
          }
        } else {
          for (const Entry& eq : node_q_.entries) {
            const double key = MinMinDistSquared(leaf_mbr_, eq.rect);
            // Re-test against the worst captured at this pop: later
            // insertions are useless once every point has a closer
            // neighbor.
            if (key <= group_worst_) queue_.push(QueueItem{key, eq.id});
          }
        }
        phase_ = Phase::kGroupLoop;
        continue;
      }
      case Phase::kGroupEmit: {
        for (size_t i = 0; i < node_p_.entries.size(); ++i) {
          Point p_witness, q_witness;
          ClosestPoints(node_p_.entries[i].rect, best_entry_[i].rect,
                        &p_witness, &q_witness);
          out_.push_back(PairResult{p_witness, q_witness,
                                    node_p_.entries[i].id, best_entry_[i].id,
                                    std::sqrt(best_[i])});
        }
        phase_ = Phase::kScanRead;
        continue;
      }
      case Phase::kFinish: {
        FinishPhase();
        final_status_ = Status::OK();
        phase_ = Phase::kDone;
        return StepResult::kDone;
      }
      case Phase::kDone:
        return StepResult::kDone;
    }
  }
}

}  // namespace kcpq
