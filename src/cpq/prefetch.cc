#include "cpq/prefetch.h"

#include <algorithm>

namespace kcpq {
namespace cpq_internal {

size_t PrefetchScheduler::Issue() {
  if (!enabled() || targets_.empty()) {
    targets_.clear();
    return 0;
  }
  if (targets_.size() > window_) {
    // Deterministic selection (key, then pages) so two runs over the same
    // frontier speculate on the same pages.
    std::partial_sort(targets_.begin(), targets_.begin() + window_,
                      targets_.end(), [](const Target& a, const Target& b) {
                        if (a.key != b.key) return a.key < b.key;
                        if (a.page_p != b.page_p) return a.page_p < b.page_p;
                        return a.page_q < b.page_q;
                      });
    targets_.resize(window_);
  }
  pages_p_.clear();
  pages_q_.clear();
  const bool merged = buffer_p_ == buffer_q_;
  for (const Target& t : targets_) {
    if (t.page_p != kInvalidPageId) pages_p_.push_back(t.page_p);
    if (t.page_q != kInvalidPageId) {
      (merged ? pages_p_ : pages_q_).push_back(t.page_q);
    }
  }
  targets_.clear();
  size_t issued = 0;
  if (buffer_p_ != nullptr && !pages_p_.empty()) {
    issued += buffer_p_->Prefetch(pages_p_.data(), pages_p_.size(), ctx_);
  }
  if (!merged && buffer_q_ != nullptr && !pages_q_.empty()) {
    issued += buffer_q_->Prefetch(pages_q_.data(), pages_q_.size(), ctx_);
  }
  return issued;
}

}  // namespace cpq_internal
}  // namespace kcpq
