#include "cpq/multiway.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <string>

#include "geometry/minkowski.h"

namespace kcpq {

namespace {

// True (non-power) distance between two points under `metric`.
double TrueDistance(const Point& a, const Point& b, Metric metric) {
  return PowToDistance(PointDistancePow(a, b, metric), metric);
}

// True lower-bound distance between two rectangles.
double TrueMinMin(const Rect& a, const Rect& b, Metric metric) {
  return PowToDistance(MinMinDistPow(a, b, metric), metric);
}

// One slot of a search tuple: a node of tree `slot` with known MBR.
struct SlotRef {
  PageId page = kInvalidPageId;
  int level = 0;
  Rect mbr;
};

struct SearchTuple {
  double bound = 0.0;  // sum of edge MINMINDISTs (true distances)
  std::vector<SlotRef> slots;
  uint64_t seq = 0;  // deterministic ordering of equal bounds

  friend bool operator>(const SearchTuple& x, const SearchTuple& y) {
    if (x.bound != y.bound) return x.bound > y.bound;
    return x.seq > y.seq;
  }
};

// Bounded max-heap of the best K tuples found so far.
class TupleHeap {
 public:
  explicit TupleHeap(size_t k) : k_(k) {}

  double Bound() const {
    return items_.size() == k_ ? items_.front().aggregate_distance
                               : std::numeric_limits<double>::infinity();
  }

  void Offer(TupleResult tuple) {
    if (items_.size() == k_) {
      if (tuple.aggregate_distance >= items_.front().aggregate_distance) {
        return;
      }
      std::pop_heap(items_.begin(), items_.end(), Less());
      items_.pop_back();
    }
    items_.push_back(std::move(tuple));
    std::push_heap(items_.begin(), items_.end(), Less());
  }

  std::vector<TupleResult> Extract() && {
    std::sort_heap(items_.begin(), items_.end(), Less());
    return std::move(items_);
  }

 private:
  struct Less {
    bool operator()(const TupleResult& a, const TupleResult& b) const {
      return a.aggregate_distance < b.aggregate_distance;
    }
  };

  size_t k_;
  std::vector<TupleResult> items_;
};

class MultiwayEngine {
 public:
  MultiwayEngine(const std::vector<const RStarTree*>& trees,
                 const std::vector<MultiwayEdge>& graph,
                 const MultiwayOptions& options, QueryContext* ctx,
                 bool accounting, CpqStats* stats)
      : trees_(trees),
        graph_(graph),
        options_(options),
        ctx_(ctx),
        accounting_(accounting),
        stats_(stats),
        results_(options.k) {}

  Status Run(std::vector<TupleResult>* out) {
    const size_t m = trees_.size();
    // Live heap bytes: each queued tuple owns an m-slot vector.
    const uint64_t tuple_bytes = sizeof(SearchTuple) + m * sizeof(SlotRef);
    std::priority_queue<SearchTuple, std::vector<SearchTuple>,
                        std::greater<SearchTuple>>
        heap;

    // Pre-trip check *before* the root reads: a pre-cancelled or
    // pre-expired query must not touch any tree. Nothing was examined,
    // so certify nothing: bound 0.
    if (ShouldStop(0)) {
      stop_bound_ = 0.0;
    } else {
      QueryContext* read_ctx = accounting_ ? ctx_ : nullptr;
      SearchTuple root;
      root.slots.resize(m);
      Status root_status;
      for (size_t i = 0; i < m && root_status.ok(); ++i) {
        Rect mbr;
        root_status = trees_[i]->RootMbr(&mbr, read_ctx);
        if (!root_status.ok()) break;
        root.slots[i] =
            SlotRef{trees_[i]->root_page(), trees_[i]->height() - 1, mbr};
      }
      if (root_status.code() == StatusCode::kDeadlineExceeded) {
        // Storage abandoned a retry before anything was examined: partial
        // with a vacuous certificate, same as a pre-expired deadline.
        stop_ = StopCause::kDeadline;
        stop_bound_ = 0.0;
      } else {
        KCPQ_RETURN_IF_ERROR(root_status);
        root.bound = BoundOf(root.slots);
        heap.push(std::move(root));
      }
    }

    uint64_t next_seq = 1;
    while (!heap.empty()) {
      stats_->max_heap_size =
          std::max<uint64_t>(stats_->max_heap_size, heap.size());
      const SearchTuple tuple = heap.top();
      heap.pop();
      if (tuple.bound > results_.Bound()) break;
      // The heap pops in ascending bound order, so on a stop the popped
      // bound alone certifies every unreported tuple — the multiway
      // analogue of the two-tree engines' frontier minimum.
      if (ShouldStop(heap.size() * tuple_bytes)) {
        stop_bound_ = tuple.bound;
        break;
      }

      // Pick the slot to expand: deepest node, ties by larger area.
      int expand = -1;
      for (size_t i = 0; i < tuple.slots.size(); ++i) {
        if (tuple.slots[i].level == 0) continue;
        if (expand < 0 ||
            tuple.slots[i].level > tuple.slots[expand].level ||
            (tuple.slots[i].level == tuple.slots[expand].level &&
             tuple.slots[i].mbr.Area() > tuple.slots[expand].mbr.Area())) {
          expand = static_cast<int>(i);
        }
      }
      if (expand < 0) {
        const Status s = EnumerateLeafTuple(tuple);
        if (s.code() == StatusCode::kDeadlineExceeded) {
          stop_ = StopCause::kDeadline;
          stop_bound_ = tuple.bound;
          break;
        }
        KCPQ_RETURN_IF_ERROR(s);
        continue;
      }
      Node node;
      const Status read_status = trees_[expand]->ReadNode(
          tuple.slots[expand].page, &node, accounting_ ? ctx_ : nullptr);
      if (read_status.code() == StatusCode::kDeadlineExceeded) {
        stop_ = StopCause::kDeadline;
        stop_bound_ = tuple.bound;
        break;
      }
      KCPQ_RETURN_IF_ERROR(read_status);
      ++stats_->node_pairs_processed;
      ++node_accesses_;
      for (const Entry& entry : node.entries) {
        SearchTuple child = tuple;
        child.slots[expand] =
            SlotRef{entry.id, node.level - 1, entry.rect};
        child.bound = BoundOf(child.slots);
        ++stats_->candidate_pairs_generated;
        if (child.bound > results_.Bound()) {
          ++stats_->candidate_pairs_pruned;
          continue;
        }
        child.seq = next_seq++;
        if (options_.max_heap_items > 0 &&
            heap.size() >= options_.max_heap_items) {
          return Status::ResourceExhausted(
              "multiway tuple heap exceeded max_heap_items = " +
              std::to_string(options_.max_heap_items));
        }
        heap.push(std::move(child));
      }
    }
    *out = std::move(results_).Extract();

    stats_->node_accesses = node_accesses_;
    stats_->quality.stop_cause = stop_;
    stats_->quality.pairs_found = out->size();
    if (stop_ != StopCause::kNone) {
      stats_->quality.guaranteed_lower_bound = stop_bound_;
      // The stop is harmless when the result set is full and the frontier
      // bound already meets the K-th best aggregate.
      stats_->quality.is_exact =
          out->size() == options_.k &&
          !out->empty() && stop_bound_ >= out->back().aggregate_distance;
    }
    return Status::OK();
  }

 private:
  bool ShouldStop(uint64_t heap_bytes) {
    if (stop_ != StopCause::kNone) return true;
    if (!accounting_) return false;
    stop_ = ctx_->Check(node_accesses_, heap_bytes);
    return stop_ != StopCause::kNone;
  }

  double BoundOf(const std::vector<SlotRef>& slots) const {
    double bound = 0.0;
    for (const MultiwayEdge& e : graph_) {
      bound += TrueMinMin(slots[e.a].mbr, slots[e.b].mbr, options_.metric);
    }
    return bound;
  }

  // All slots are leaves: enumerate entry combinations slot by slot with
  // partial-sum pruning. `chosen` holds the points fixed so far.
  Status EnumerateLeafTuple(const SearchTuple& tuple) {
    const size_t m = tuple.slots.size();
    nodes_.resize(m);
    for (size_t i = 0; i < m; ++i) {
      KCPQ_RETURN_IF_ERROR(trees_[i]->ReadNode(tuple.slots[i].page, &nodes_[i],
                                               accounting_ ? ctx_ : nullptr));
      ++node_accesses_;
    }
    ++stats_->node_pairs_processed;
    chosen_points_.assign(m, Point{});
    chosen_ids_.assign(m, 0);
    EnumerateSlot(tuple, 0, 0.0);
    return Status::OK();
  }

  void EnumerateSlot(const SearchTuple& tuple, size_t slot,
                     double exact_so_far) {
    const size_t m = tuple.slots.size();
    if (slot == m) {
      TupleResult result;
      result.points = chosen_points_;
      result.ids = chosen_ids_;
      result.aggregate_distance = exact_so_far;
      results_.Offer(std::move(result));
      return;
    }
    for (const Entry& entry : nodes_[slot].entries) {
      const Point p = entry.AsPoint();
      // Aggregate contribution of edges between this slot and already
      // fixed slots; edges to later slots are bounded below by the
      // point-to-leaf-MBR distance.
      double exact = exact_so_far;
      double lower = 0.0;
      for (const MultiwayEdge& e : graph_) {
        const size_t lo = static_cast<size_t>(std::min(e.a, e.b));
        const size_t hi = static_cast<size_t>(std::max(e.a, e.b));
        if (hi != slot && lo != slot) continue;
        const size_t other = lo == slot ? hi : lo;
        if (other < slot) {
          ++stats_->point_distance_computations;
          exact += TrueDistance(p, chosen_points_[other], options_.metric);
        } else if (other > slot) {
          lower += TrueMinMin(Rect::FromPoint(p), tuple.slots[other].mbr,
                              options_.metric);
        }
      }
      if (exact + lower > results_.Bound()) continue;
      chosen_points_[slot] = p;
      chosen_ids_[slot] = entry.id;
      EnumerateSlot(tuple, slot + 1, exact);
    }
  }

  const std::vector<const RStarTree*>& trees_;
  const std::vector<MultiwayEdge>& graph_;
  const MultiwayOptions& options_;
  QueryContext* ctx_;
  bool accounting_;
  CpqStats* stats_;
  TupleHeap results_;
  std::vector<Node> nodes_;
  std::vector<Point> chosen_points_;
  std::vector<uint64_t> chosen_ids_;
  uint64_t node_accesses_ = 0;
  StopCause stop_ = StopCause::kNone;
  /// Aggregate-distance lower bound on every unreported tuple at stop
  /// time (true distance; the popped heap key).
  double stop_bound_ = std::numeric_limits<double>::infinity();
};

}  // namespace

Result<std::vector<TupleResult>> MultiwayKClosestTuples(
    const std::vector<const RStarTree*>& trees,
    const std::vector<MultiwayEdge>& graph, const MultiwayOptions& options,
    CpqStats* stats) {
  if (trees.size() < 2) {
    return Status::InvalidArgument("multiway query needs at least 2 trees");
  }
  if (graph.empty()) {
    return Status::InvalidArgument("multiway query graph has no edges");
  }
  for (const MultiwayEdge& e : graph) {
    if (e.a < 0 || e.b < 0 || e.a >= static_cast<int>(trees.size()) ||
        e.b >= static_cast<int>(trees.size()) || e.a == e.b) {
      return Status::InvalidArgument("bad edge (" + std::to_string(e.a) +
                                     ", " + std::to_string(e.b) + ")");
    }
  }
  CpqStats local;
  CpqStats* s = stats != nullptr ? stats : &local;
  *s = CpqStats{};
  std::vector<TupleResult> out;
  if (options.k == 0) return out;
  std::vector<BufferStats> before;
  before.reserve(trees.size());
  for (const RStarTree* tree : trees) {
    if (tree->size() == 0) return out;
    before.push_back(tree->buffer()->ThreadStats());
  }
  // An external context supersedes `control` (same rule as CpqOptions).
  QueryContext local_ctx(options.control);
  QueryContext* ctx = options.context != nullptr ? options.context
                                                 : &local_ctx;
  const bool accounting =
      options.context != nullptr || !ctx->control().IsUnlimited();
  MultiwayEngine engine(trees, graph, options, ctx, accounting, s);
  KCPQ_RETURN_IF_ERROR(engine.Run(&out));
  for (size_t i = 0; i < trees.size(); ++i) {
    s->disk_accesses_p +=
        trees[i]->buffer()->ThreadStats().misses - before[i].misses;
  }
  return out;
}

std::vector<TupleResult> BruteForceMultiwayKClosestTuples(
    const std::vector<std::vector<std::pair<Point, uint64_t>>>& sets,
    const std::vector<MultiwayEdge>& graph, size_t k, Metric metric) {
  TupleHeap heap(k);
  const size_t m = sets.size();
  std::vector<size_t> index(m, 0);
  std::vector<TupleResult> out;
  for (const auto& set : sets) {
    if (set.empty()) return out;
  }
  while (true) {
    TupleResult tuple;
    tuple.points.resize(m);
    tuple.ids.resize(m);
    for (size_t i = 0; i < m; ++i) {
      tuple.points[i] = sets[i][index[i]].first;
      tuple.ids[i] = sets[i][index[i]].second;
    }
    tuple.aggregate_distance = 0.0;
    for (const MultiwayEdge& e : graph) {
      tuple.aggregate_distance += PowToDistance(
          PointDistancePow(tuple.points[e.a], tuple.points[e.b], metric),
          metric);
    }
    heap.Offer(std::move(tuple));
    // Odometer increment.
    size_t d = 0;
    while (d < m && ++index[d] == sets[d].size()) {
      index[d] = 0;
      ++d;
    }
    if (d == m) break;
  }
  return std::move(heap).Extract();
}

}  // namespace kcpq
