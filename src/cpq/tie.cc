#include "cpq/tie.h"

#include <algorithm>

#include "geometry/metrics.h"

namespace kcpq {

void ComputeTieScores(const Rect& rp, const Rect& rq,
                      const std::vector<TieCriterion>& chain,
                      const TieContext& context, double scores[kMaxTieChain]) {
  const size_t n = std::min(chain.size(), kMaxTieChain);
  for (size_t i = 0; i < n; ++i) {
    switch (chain[i]) {
      case TieCriterion::kLargestNormalizedArea: {
        // T1: the pair containing the largest MBR (area as a fraction of
        // the owning tree's root area). Negated: larger preferred.
        const double np = context.root_area_p > 0.0
                              ? rp.Area() / context.root_area_p
                              : rp.Area();
        const double nq = context.root_area_q > 0.0
                              ? rq.Area() / context.root_area_q
                              : rq.Area();
        scores[i] = -std::max(np, nq);
        break;
      }
      case TieCriterion::kSmallestMinMaxDist:
        // T2: smaller MINMAXDIST preferred.
        scores[i] = MinMaxDistPow(rp, rq, context.metric);
        break;
      case TieCriterion::kLargestAreaSum:
        // T3: larger combined area preferred.
        scores[i] = -(rp.Area() + rq.Area());
        break;
      case TieCriterion::kSmallestEnclosureWaste:
        // T4: smaller dead space in the joint MBR preferred.
        scores[i] = Union(rp, rq).Area() - rp.Area() - rq.Area();
        break;
      case TieCriterion::kLargestIntersection:
        // T5: larger overlap area preferred.
        scores[i] = -IntersectionArea(rp, rq);
        break;
    }
  }
  for (size_t i = n; i < kMaxTieChain; ++i) scores[i] = 0.0;
}

}  // namespace kcpq
