#include "cpq/planner.h"

#include <algorithm>

namespace kcpq {

namespace {

// The buffer size beyond which the paper found STD to overtake HEAP
// (Sections 4.4 and 5.1.3: "after the threshold of B = 4 pages").
constexpr size_t kBufferThresholdPages = 4;

}  // namespace

Result<CpqPlan> PlanKClosestPairs(const RStarTree& tree_p,
                                  const RStarTree& tree_q, size_t k,
                                  size_t buffer_pages_total) {
  CpqPlan plan;
  plan.options.k = k;

  Rect mbr_p, mbr_q;
  KCPQ_RETURN_IF_ERROR(tree_p.RootMbr(&mbr_p));
  KCPQ_RETURN_IF_ERROR(tree_q.RootMbr(&mbr_q));
  if (!mbr_p.IsEmpty() && !mbr_q.IsEmpty()) {
    const double intersection = IntersectionArea(mbr_p, mbr_q);
    const double union_area =
        mbr_p.Area() + mbr_q.Area() - intersection;
    plan.estimated_overlap =
        union_area > 0.0 ? intersection / union_area : 1.0;
  }

  // Algorithm choice (Section 5.3): HEAP for zero/small buffers, STD once
  // the buffer is big enough to reward the depth-first recursion.
  if (buffer_pages_total > kBufferThresholdPages) {
    plan.options.algorithm = CpqAlgorithm::kSortedDistances;
    plan.rationale = "buffer > 4 pages: STD exploits the LRU buffer "
                     "(HEAP measured insensitive to it)";
  } else {
    plan.options.algorithm = CpqAlgorithm::kHeap;
    plan.rationale = "zero/small buffer: HEAP is the most efficient, "
                     "especially on overlapping workspaces";
  }

  // Height treatment (Section 4.2): fix-at-root, except STD on (near-)
  // disjoint workspaces where fix-at-leaves measured better.
  if (plan.options.algorithm == CpqAlgorithm::kSortedDistances &&
      plan.estimated_overlap < 0.01 &&
      tree_p.height() != tree_q.height()) {
    plan.options.height_strategy = HeightStrategy::kFixAtLeaves;
    plan.rationale += "; disjoint workspaces + different heights: "
                      "fix-at-leaves for STD";
  } else {
    plan.options.height_strategy = HeightStrategy::kFixAtRoot;
  }

  // Cost prediction for EXPLAIN output (uniformity assumption).
  CostModelInput input;
  input.n_p = std::max<uint64_t>(1, tree_p.size());
  input.n_q = std::max<uint64_t>(1, tree_q.size());
  input.overlap = plan.estimated_overlap;
  input.k = std::max<size_t>(1, k);
  input.fanout = tree_p.max_entries();
  auto estimate = EstimateCpqCost(input);
  if (estimate.ok()) {
    plan.estimated_disk_accesses = estimate.value().disk_accesses;
  }
  return plan;
}

}  // namespace kcpq
