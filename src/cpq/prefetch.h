// Speculative heap-frontier prefetch for the CPQ engines (docs/io.md).
//
// The HEAP algorithm's global min-heap — and STD's sorted child list —
// already name the node pairs the traversal will expand next; the
// scheduler turns that knowledge into overlapped I/O by handing the pages
// of the W best not-yet-read pairs to BufferManager::Prefetch. Speculation
// is invisible to the paper's cost metric (the buffer stages prefetched
// pages outside the frame table; see buffer/buffer_manager.h) and charged
// to the query's ResourceAccountant at issue time, so governance sees the
// waste a mispredicting window creates.
//
// Usage per expansion step: Clear(), Add() every candidate that survives
// the bound, Issue(). Issue selects the window() best by key, so callers
// need not pre-sort; duplicate and already-resident pages are coalesced by
// the buffer, making repeated speculation on a slow-moving frontier cheap.
//
// Keys live in the active QueryObjective's key space (cpq/objective.h):
// "best" always means smallest key, which is ascending MINMINDIST for the
// minimizing families and descending MAXMAXDIST (negated) for farthest
// pairs — the scheduler speculates along whichever pop order the objective
// actually uses, with no per-family code here.

#ifndef KCPQ_CPQ_PREFETCH_H_
#define KCPQ_CPQ_PREFETCH_H_

#include <cstddef>
#include <vector>

#include "buffer/buffer_manager.h"
#include "common/query_context.h"
#include "storage/page.h"

namespace kcpq {
namespace cpq_internal {

class PrefetchScheduler {
 public:
  /// Arms the scheduler: pages of the P side go to `buffer_p`, the Q side
  /// to `buffer_q` (one merged batch when both sides share a buffer, as in
  /// a self-join). `window` = 0 disables speculation entirely; `ctx` (may
  /// be null) receives the per-page accounting charges.
  void Configure(BufferManager* buffer_p, BufferManager* buffer_q,
                 size_t window, QueryContext* ctx) {
    buffer_p_ = buffer_p;
    buffer_q_ = buffer_q;
    window_ = window;
    ctx_ = ctx;
  }

  bool enabled() const { return window_ > 0; }
  size_t window() const { return window_; }

  void Clear() { targets_.clear(); }

  /// Registers one upcoming node pair; `key` orders targets (smaller =
  /// sooner). Either page may be kInvalidPageId to skip that side.
  void Add(double key, PageId page_p, PageId page_q) {
    if (!enabled()) return;
    targets_.push_back(Target{key, page_p, page_q});
  }

  /// Prefetches the pages of the window() best targets and clears the
  /// list. Returns the number of speculative reads actually issued (after
  /// the buffer's resident/duplicate coalescing).
  size_t Issue();

 private:
  struct Target {
    double key = 0.0;
    PageId page_p = kInvalidPageId;
    PageId page_q = kInvalidPageId;
  };

  std::vector<Target> targets_;
  std::vector<PageId> pages_p_;  // scratch, reused across Issue calls
  std::vector<PageId> pages_q_;
  BufferManager* buffer_p_ = nullptr;
  BufferManager* buffer_q_ = nullptr;
  QueryContext* ctx_ = nullptr;
  size_t window_ = 0;
};

}  // namespace cpq_internal
}  // namespace kcpq

#endif  // KCPQ_CPQ_PREFETCH_H_
