#include "cpq/cpq.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <queue>

#include "cpq/engine.h"
#include "obs/kcpq_metrics.h"

namespace kcpq {

namespace {

/// Folds a finished query's stats into the process-wide metrics registry.
/// `seconds < 0` means the caller skipped timing (metrics disabled).
void FoldCpqMetrics(const CpqStats& s, double seconds, QueryFamily family) {
#if KCPQ_METRICS
  if (!obs::Enabled()) return;
  const obs::KcpqMetrics& m = obs::KcpqMetrics::Get();
  m.cpq_queries_total->Increment();
  m.cpq_node_pairs_total->Add(s.node_pairs_processed);
  m.cpq_candidates_generated_total->Add(s.candidate_pairs_generated);
  m.cpq_candidates_pruned_total->Add(s.candidate_pairs_pruned);
  m.cpq_distance_computations_total->Add(s.point_distance_computations);
  m.cpq_leaf_pairs_skipped_total->Add(s.leaf_pairs_skipped);
  m.cpq_query_node_accesses->Observe(static_cast<double>(s.node_accesses));
  if (seconds >= 0.0) {
    m.cpq_query_seconds->Observe(seconds);
    FamilyQuerySeconds(family)->Observe(seconds);
  }
#else
  (void)s;
  (void)seconds;
  (void)family;
#endif
}

/// Steady-clock seconds since `start`, or -1 when timing was skipped.
double SecondsSince(
    const std::chrono::steady_clock::time_point& start, bool timed) {
  if (!timed) return -1.0;
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Metrics-enabled queries pay one clock read at entry and exit; disabled
/// ones skip the clock entirely (bench_trace measures exactly this path).
bool MetricsTimingOn() {
#if KCPQ_METRICS
  return obs::Enabled();
#else
  return false;
#endif
}

}  // namespace

const char* CpqAlgorithmName(CpqAlgorithm a) {
  switch (a) {
    case CpqAlgorithm::kNaive:
      return "NAIVE";
    case CpqAlgorithm::kExhaustive:
      return "EXH";
    case CpqAlgorithm::kSimple:
      return "SIM";
    case CpqAlgorithm::kSortedDistances:
      return "STD";
    case CpqAlgorithm::kHeap:
      return "HEAP";
  }
  return "?";
}

const char* QueryFamilyName(QueryFamily f) {
  switch (f) {
    case QueryFamily::kClosest:
      return "k-closest-pairs";
    case QueryFamily::kFarthest:
      return "k-farthest-pairs";
    case QueryFamily::kRangeClosest:
      return "k-range-closest-pairs";
  }
  return "?";
}

obs::Histogram* FamilyQuerySeconds(QueryFamily f) {
  const obs::KcpqMetrics& m = obs::KcpqMetrics::Get();
  switch (f) {
    case QueryFamily::kClosest:
      return m.query_seconds_closest;
    case QueryFamily::kFarthest:
      return m.query_seconds_farthest;
    case QueryFamily::kRangeClosest:
      return m.query_seconds_rcp;
  }
  return m.query_seconds_closest;
}

const char* LeafKernelName(LeafKernel k) {
  switch (k) {
    case LeafKernel::kNestedLoop:
      return "NESTED";
    case LeafKernel::kPlaneSweep:
      return "SWEEP";
  }
  return "?";
}

Result<std::vector<PairResult>> KClosestPairs(const RStarTree& tree_p,
                                              const RStarTree& tree_q,
                                              const CpqOptions& options,
                                              CpqStats* stats) {
  const bool timed = MetricsTimingOn();
  const auto start = timed ? std::chrono::steady_clock::now()
                           : std::chrono::steady_clock::time_point{};
  CpqStats local;
  CpqStats* s = stats != nullptr ? stats : &local;
  cpq_internal::CpqEngine engine(tree_p, tree_q, options, s);
  std::vector<PairResult> out;
  KCPQ_RETURN_IF_ERROR(engine.Run(&out));
  FoldCpqMetrics(*s, SecondsSince(start, timed), options.family);
  return out;
}

Result<std::vector<PairResult>> SelfKClosestPairs(const RStarTree& tree,
                                                  CpqOptions options,
                                                  CpqStats* stats) {
  options.self_join = true;
  return KClosestPairs(tree, tree, options, stats);
}

namespace {

// Group nearest-neighbor search for one P leaf: a single best-first
// traversal of Q serves every point of the leaf at once. The queue key
// MINMINDIST(leaf MBR, Q subtree MBR) lower-bounds the distance from
// *every* leaf point to everything beneath the subtree, so the traversal
// stops when the key exceeds the worst unresolved best. Amortizes one Q
// descent over up to M points (vs. one descent per point).
// `ctx` is polled per popped Q node; on a stop the leaf's half-built
// best lists are discarded (per-point NN answers are only emitted whole)
// and `*stop` tells the caller to end the scan.
Status GroupNearestForLeaf(const RStarTree& tree_q, const Node& leaf,
                           QueryContext* ctx, bool accounting,
                           CpqStats* stats, std::vector<PairResult>* out,
                           uint64_t* node_accesses, StopCause* stop) {
  struct QueueItem {
    double key;
    PageId page;
    bool operator>(const QueueItem& other) const { return key > other.key; }
  };
  const Rect leaf_mbr = leaf.ComputeMbr();
  std::vector<double> best(leaf.entries.size(),
                           std::numeric_limits<double>::infinity());
  std::vector<Entry> best_entry(leaf.entries.size());

  std::priority_queue<QueueItem, std::vector<QueueItem>,
                      std::greater<QueueItem>>
      queue;
  queue.push(QueueItem{0.0, tree_q.root_page()});
  while (!queue.empty()) {
    const QueueItem item = queue.top();
    queue.pop();
    const double worst = *std::max_element(best.begin(), best.end());
    if (item.key > worst) break;  // no leaf point can improve
    if (accounting) {
      *stop = ctx->Check(*node_accesses, out->size() * sizeof(PairResult));
      if (*stop != StopCause::kNone) return Status::OK();
    }
    Node node;
    const Status read_status =
        tree_q.ReadNode(item.page, &node, accounting ? ctx : nullptr);
    if (read_status.code() == StatusCode::kDeadlineExceeded) {
      *stop = StopCause::kDeadline;
      return Status::OK();
    }
    KCPQ_RETURN_IF_ERROR(read_status);
    ++stats->node_pairs_processed;
    ++*node_accesses;
    if (node.IsLeaf()) {
      for (const Entry& eq : node.entries) {
        for (size_t i = 0; i < leaf.entries.size(); ++i) {
          ++stats->point_distance_computations;
          // Entry rects: exact point distance for point data, object
          // MINMINDIST for extended objects.
          const double d2 = MinMinDistSquared(leaf.entries[i].rect, eq.rect);
          if (d2 < best[i]) {
            best[i] = d2;
            best_entry[i] = eq;
          }
        }
      }
      continue;
    }
    for (const Entry& eq : node.entries) {
      const double key = MinMinDistSquared(leaf_mbr, eq.rect);
      // Re-test against the current worst: later insertions are useless
      // once every point has a closer neighbor.
      if (key <= worst) queue.push(QueueItem{key, eq.id});
    }
  }
  for (size_t i = 0; i < leaf.entries.size(); ++i) {
    Point p_witness, q_witness;
    ClosestPoints(leaf.entries[i].rect, best_entry[i].rect, &p_witness,
                  &q_witness);
    out->push_back(PairResult{p_witness, q_witness, leaf.entries[i].id,
                              best_entry[i].id, std::sqrt(best[i])});
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<PairResult>> SemiClosestPairs(const RStarTree& tree_p,
                                                 const RStarTree& tree_q,
                                                 CpqStats* stats,
                                                 const QueryControl& control,
                                                 QueryContext* context) {
  CpqStats local;
  CpqStats* s = stats != nullptr ? stats : &local;
  *s = CpqStats{};
  const BufferStats before_p = tree_p.buffer()->ThreadStats();
  const BufferStats before_q = tree_q.buffer()->ThreadStats();

  std::vector<PairResult> out;
  if (tree_p.size() == 0 || tree_q.size() == 0) return out;
  out.reserve(tree_p.size());

  // An external context supersedes `control` (same rule as CpqOptions).
  QueryContext local_ctx(control);
  QueryContext* ctx = context != nullptr ? context : &local_ctx;
  const bool accounting =
      context != nullptr || !ctx->control().IsUnlimited();

  uint64_t node_accesses = 0;
  // Pre-trip check: a pre-cancelled or pre-expired query touches no pages.
  StopCause stop = accounting ? ctx->Check(0, 0) : StopCause::kNone;
  Status inner = Status::OK();
  if (stop == StopCause::kNone) {
    Status scan = tree_p.ScanLeaves(
        [&](const Node& leaf) {
          ++node_accesses;  // the P leaf itself
          inner = GroupNearestForLeaf(tree_q, leaf, ctx, accounting, s, &out,
                                      &node_accesses, &stop);
          return inner.ok() && stop == StopCause::kNone;
        },
        accounting ? ctx : nullptr);
    if (scan.code() == StatusCode::kDeadlineExceeded) {
      stop = StopCause::kDeadline;
      scan = Status::OK();
    }
    KCPQ_RETURN_IF_ERROR(scan);
    KCPQ_RETURN_IF_ERROR(inner);
  }

  std::sort(out.begin(), out.end(),
            [](const PairResult& a, const PairResult& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.p_id < b.p_id;
            });
  s->disk_accesses_p = tree_p.buffer()->ThreadStats().misses - before_p.misses;
  s->disk_accesses_q = tree_q.buffer()->ThreadStats().misses - before_q.misses;
  s->node_accesses = node_accesses;
  s->quality.stop_cause = stop;
  s->quality.pairs_found = out.size();
  if (stop != StopCause::kNone) {
    // A per-point NN result says nothing about the unvisited P points, so
    // the only honest global lower bound is zero; the partial result is
    // still complete and exact for every P point it covers.
    s->quality.guaranteed_lower_bound = 0.0;
    s->quality.is_exact = false;
  }
  FoldCpqMetrics(*s, -1.0, QueryFamily::kClosest);
  return out;
}

}  // namespace kcpq
