// Internal engine shared by the five CPQ algorithms. Not part of the
// public API; include cpq/cpq.h instead.

#ifndef KCPQ_CPQ_ENGINE_H_
#define KCPQ_CPQ_ENGINE_H_

#include <cstdint>
#include <vector>

#include "cpq/cpq.h"
#include "cpq/leaf_kernel.h"
#include "cpq/prefetch.h"
#include "cpq/result_heap.h"
#include "cpq/tie.h"
#include "rtree/rtree.h"

namespace kcpq {

class ResumableCpqQuery;

namespace cpq_internal {

/// A node of one tree as seen by the traversal: location plus the facts the
/// pruning math needs without reading the page.
struct NodeRef {
  PageId page = kInvalidPageId;
  int level = 0;
  Rect mbr;
  /// Lower bound on the number of points in the subtree (minimum-fill
  /// argument m^(level+1); exact-count-based for nodes already read).
  uint64_t min_points = 1;
  /// Upper bound on the points beneath (max-fill argument M^(level+1);
  /// exact-count-based for nodes already read). Feeds the per-rank anytime
  /// certificate: a frontier pair can hide at most
  /// max_points_p * max_points_q undiscovered point pairs.
  uint64_t max_points = 1;
};

/// A candidate pair of subtrees with its precomputed ordering keys.
struct Candidate {
  NodeRef p;
  NodeRef q;
  /// Objective key of the pair (cpq/objective.h): MINMINDIST power for
  /// minimizing families, -MAXMAXDIST power for kFarthest. Smaller =
  /// more promising for every family.
  double key = 0.0;
  double tie[kMaxTieChain] = {0, 0, 0, 0, 0};
  uint64_t min_pairs = 1;  // lower bound on point pairs beneath
  uint64_t max_pairs = 1;  // upper bound on point pairs beneath
};

/// Strict weak order: ascending key (the objective's pop order), then the
/// tie chain, then page ids (full determinism).
struct CandidateLess {
  bool operator()(const Candidate& a, const Candidate& b) const {
    if (a.key != b.key) return a.key < b.key;
    for (size_t i = 0; i < kMaxTieChain; ++i) {
      if (a.tie[i] != b.tie[i]) return a.tie[i] < b.tie[i];
    }
    if (a.p.page != b.p.page) return a.p.page < b.p.page;
    return a.q.page < b.q.page;
  }
};

/// Which side(s) of a node pair to descend (Section 3.7).
enum class DescendChoice { kBoth, kFirstOnly, kSecondOnly, kLeaves };

DescendChoice ChooseDescend(int level_p, int level_q, HeightStrategy strategy);

/// One K-CPQ execution. Construct, Run once, discard.
class CpqEngine {
 public:
  CpqEngine(const RStarTree& tree_p, const RStarTree& tree_q,
            const CpqOptions& options, CpqStats* stats);

  Status Run(std::vector<PairResult>* out);

 private:
  /// The resumable adapter (cpq/resumable.h) re-drives this engine's
  /// traversal as an explicit state machine; it reuses the kernels
  /// (ProcessLeaves, GenerateCandidates, ...) and the control state
  /// directly so the two execution modes cannot drift apart.
  friend class ::kcpq::ResumableCpqQuery;

  /// Recursive driver (kNaive/kExhaustive/kSimple/kSortedDistances).
  Status ProcessPairRecursive(const NodeRef& ref_p, const NodeRef& ref_q);

  /// Iterative driver (kHeap).
  Status RunHeap(const NodeRef& root_p, const NodeRef& root_q);

  /// Reads both nodes of a pair (two counted accesses) and refreshes the
  /// refs' MBR / min_points from the actual node contents.
  Status ReadPair(NodeRef* ref_p, NodeRef* ref_q, Node* node_p, Node* node_q);

  /// Brute-force distance scan of two leaves; feeds the result heap and
  /// tightens T. `same_node` drives the self-join duplicate rules.
  void ProcessLeaves(const Node& node_p, const Node& node_q, bool same_node);

  /// Generates the child pairs of (ref_p, ref_q) according to the descend
  /// choice, with minmin / tie / min_pairs filled in.
  void GenerateCandidates(const NodeRef& ref_p, const Node& node_p,
                          const NodeRef& ref_q, const Node& node_q,
                          DescendChoice choice, std::vector<Candidate>* out);

  /// Tightens T from Inequality-2-style guarantees over `candidates`.
  /// Minimizing: MINMAXDIST for K = 1, MAXMAXDIST count accumulation for
  /// K > 1. kFarthest: the mirror — MINMINDIST lower-bounds every pair
  /// beneath a candidate, so accumulating candidates by descending
  /// MINMINDIST until min_pairs reaches K bounds the K-th farthest
  /// distance from below. No-op when the objective forbids capacity-based
  /// tightening (kRangeClosest: counted pairs may lie outside the rect).
  void TightenBoundFromCandidates(const std::vector<Candidate>& candidates);

  /// Polls the QueryContext (at node-pair granularity). Once a stop cause
  /// is latched it stays latched — the traversal switches from expanding
  /// the frontier to draining it into the certificate.
  bool ShouldStop(uint64_t extra_bytes);

  /// Records an unexpanded node pair: its key (the minimum over all of
  /// them certifies that no undiscovered pair can beat it — "closer" for
  /// minimizing families, "farther" for kFarthest) and its pair capacity,
  /// which refines the certificate per rank.
  void FoldFrontier(double key, uint64_t max_pairs) {
    frontier_min_pow_ = std::min(frontier_min_pow_, key);
    certificate_.Add(key, std::max<uint64_t>(max_pairs, 1));
  }

  /// Reports a strict improvement of the pruning bound T to the attached
  /// profile / trace; no-op (one compare) when neither wants it.
  void NoteBoundImprovement();

  /// Run() epilogue shared with the resumable adapter: fills the quality
  /// certificate from the latched stop cause / frontier state and records
  /// the query-summary trace event.
  void FinalizeQualityAndTrace();

  /// True for algorithms that prune with MINMINDIST (all but kNaive).
  bool Prunes() const { return options_.algorithm != CpqAlgorithm::kNaive; }
  /// True for algorithms that tighten T beyond found pairs.
  bool TightensBound() const {
    switch (options_.algorithm) {
      case CpqAlgorithm::kSimple:
      case CpqAlgorithm::kSortedDistances:
      case CpqAlgorithm::kHeap:
        return true;
      default:
        return false;
    }
  }

  const RStarTree& tree_p_;
  const RStarTree& tree_q_;
  const CpqOptions& options_;
  CpqStats* stats_;  // never null (engine owns a local fallback)
  CpqStats local_stats_;

  TieContext tie_context_;
  /// The query's objective policy (family + metric + optional rect); every
  /// key, prune test, and certificate conversion goes through it.
  QueryObjective objective_;
  ResultHeap results_;
  /// Pruning bound T (key space). Upper bound on the final K-th key.
  double bound_;
  /// Scratch for the capacity accumulation of TightenBoundFromCandidates
  /// (avoids reallocating per node).
  std::vector<std::pair<double, uint64_t>> maxmax_scratch_;
  /// Sorted-copy buffers for the plane-sweep leaf kernel.
  SweepScratch<Entry> sweep_scratch_;
  /// Speculative reads for the frontier's best pairs (disabled unless
  /// options.prefetch_window > 0; see cpq/prefetch.h).
  PrefetchScheduler prefetch_;

  // --- lifecycle control state ---
  /// The query's context: `options.context` when the caller provided one,
  /// otherwise `local_context_` built from `options.control`. All stop
  /// polls and resource charges go through it.
  QueryContext local_context_;
  QueryContext* context_;
  /// Observability sinks borrowed from the context (null when the caller
  /// attached none — the common case, which must stay zero-cost). The
  /// profile feeds the EXPLAIN per-level pruning table; the trace records
  /// descend/heap/prune/leaf events (obs/explain.h, obs/trace.h).
  obs::PruningProfile* profile_;
  obs::TraceBuffer* trace_;
  /// False only for uncontrolled queries with no external context — the
  /// zero-overhead fast path (no polls, no page charging).
  bool accounting_;
  /// Logical node reads so far (2 per ReadPair); the budgeted quantity.
  uint64_t node_accesses_ = 0;
  /// Live candidate-state bytes (recursion frames' candidate vectors; the
  /// kHeap pair heap is accounted separately via ShouldStop's extra).
  uint64_t candidate_bytes_ = 0;
  /// Latched stop cause; kNone while the query is allowed to expand.
  StopCause stop_ = StopCause::kNone;
  /// Min key over node pairs left unexpanded by a stop; +infinity when
  /// the search space was exhausted. (Historically named after the
  /// minimizing families' MINMINDIST power; for kFarthest it is the
  /// negated MAXMAXDIST power, i.e. still the most optimistic frontier.)
  double frontier_min_pow_ = std::numeric_limits<double>::infinity();
  /// Per-rank refinement of the frontier bound (see FrontierCertificate).
  FrontierCertificate certificate_;
  /// Last bound_ value reported to the profile/trace (power space).
  double reported_bound_ = std::numeric_limits<double>::infinity();
};

/// Lower bound on points under a node that has been read.
uint64_t MinPointsOfNode(const Node& node, uint64_t min_entries);

/// Upper bound on points under a node that has been read (saturating).
uint64_t MaxPointsOfNode(const Node& node, uint64_t max_entries);

}  // namespace cpq_internal
}  // namespace kcpq

#endif  // KCPQ_CPQ_ENGINE_H_
