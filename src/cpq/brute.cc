#include "cpq/brute.h"

#include <cmath>

#include "cpq/leaf_kernel.h"
#include "cpq/result_heap.h"

namespace kcpq {

namespace {

/// A point dressed up with its degenerate rect so the shared sweep kernel
/// (which speaks rects) can enumerate point pairs.
struct SweepPoint {
  Rect rect;
  Point pt;
  uint64_t id = 0;
};

std::vector<SweepPoint> ToSweepPoints(
    const std::vector<std::pair<Point, uint64_t>>& items) {
  std::vector<SweepPoint> out;
  out.reserve(items.size());
  for (const auto& [pt, id] : items) {
    out.push_back(SweepPoint{Rect::FromPoint(pt), pt, id});
  }
  return out;
}

}  // namespace

std::vector<PairResult> BruteForceKClosestPairs(
    const std::vector<std::pair<Point, uint64_t>>& p,
    const std::vector<std::pair<Point, uint64_t>>& q, size_t k,
    bool self_join, Metric metric, LeafKernel kernel,
    const QueryControl& control, QueryQuality* quality,
    QueryContext* context) {
  ResultHeap heap(k, QueryObjective(QueryFamily::kClosest, metric));
  StopCause stop = StopCause::kNone;
  const QueryControl& effective =
      context != nullptr ? context->control() : control;
  // Stop granularity: one outer point (= |q| distance tests) per poll.
  // Node budgets are meaningless here (no tree is read), so only the
  // cancel / deadline limits are honored.
  uint64_t outer = 0;
  const auto should_stop = [&] {
    if (stop != StopCause::kNone) return true;
    if (effective.IsUnlimited()) return false;
    stop = effective.Check(0, 0);
    if (stop == StopCause::kNodeBudget || stop == StopCause::kMemoryBudget) {
      stop = StopCause::kNone;
    }
    return stop != StopCause::kNone;
  };
  if (kernel == LeafKernel::kPlaneSweep) {
    const std::vector<SweepPoint> sp = ToSweepPoints(p);
    const std::vector<SweepPoint> sq = ToSweepPoints(q);
    cpq_internal::SweepScratch<SweepPoint> scratch;
    cpq_internal::PlaneSweepPairs(
        sp, sq, metric, /*strict=*/false, &scratch,
        [](const SweepPoint& it) -> const Rect& { return it.rect; },
        [&] { return heap.Bound(); },
        [&](const SweepPoint& a, const SweepPoint& b) {
          if (++outer % 1024 == 0 && should_stop()) return false;
          if (!self_join || a.id < b.id) {
            heap.Offer(PointDistancePow(a.pt, b.pt, metric), a.pt, b.pt, a.id,
                       b.id);
          }
          return true;
        });
  } else {
    for (const auto& [pp, pid] : p) {
      if (should_stop()) break;
      for (const auto& [qq, qid] : q) {
        if (self_join && pid >= qid) continue;
        heap.Offer(PointDistancePow(pp, qq, metric), pp, qq, pid, qid);
      }
    }
  }
  if (quality != nullptr) {
    *quality = QueryQuality{};
    quality->stop_cause = stop;
    quality->pairs_found = heap.size();
    if (stop != StopCause::kNone) {
      quality->guaranteed_lower_bound = 0.0;  // a scan certifies nothing
      quality->is_exact = false;
    }
  }
  return std::move(heap).Extract();
}

std::vector<PairResult> BruteForceSemiClosestPairs(
    const std::vector<std::pair<Point, uint64_t>>& p,
    const std::vector<std::pair<Point, uint64_t>>& q) {
  std::vector<PairResult> out;
  if (q.empty()) return out;
  out.reserve(p.size());
  for (const auto& [pp, pid] : p) {
    ResultHeap best(1);
    for (const auto& [qq, qid] : q) {
      best.Offer(SquaredDistance(pp, qq), pp, qq, pid, qid);
    }
    std::vector<PairResult> one = std::move(best).Extract();
    out.push_back(one.front());
  }
  std::sort(out.begin(), out.end(),
            [](const PairResult& a, const PairResult& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.p_id < b.p_id;
            });
  return out;
}

}  // namespace kcpq
