#include "cpq/brute.h"

#include <cmath>

#include "cpq/result_heap.h"

namespace kcpq {

std::vector<PairResult> BruteForceKClosestPairs(
    const std::vector<std::pair<Point, uint64_t>>& p,
    const std::vector<std::pair<Point, uint64_t>>& q, size_t k,
    bool self_join, Metric metric) {
  ResultHeap heap(k, metric);
  for (const auto& [pp, pid] : p) {
    for (const auto& [qq, qid] : q) {
      if (self_join && pid >= qid) continue;
      heap.Offer(PointDistancePow(pp, qq, metric), pp, qq, pid, qid);
    }
  }
  return std::move(heap).Extract();
}

std::vector<PairResult> BruteForceSemiClosestPairs(
    const std::vector<std::pair<Point, uint64_t>>& p,
    const std::vector<std::pair<Point, uint64_t>>& q) {
  std::vector<PairResult> out;
  if (q.empty()) return out;
  out.reserve(p.size());
  for (const auto& [pp, pid] : p) {
    ResultHeap best(1);
    for (const auto& [qq, qid] : q) {
      best.Offer(SquaredDistance(pp, qq), pp, qq, pid, qid);
    }
    std::vector<PairResult> one = std::move(best).Extract();
    out.push_back(one.front());
  }
  std::sort(out.begin(), out.end(),
            [](const PairResult& a, const PairResult& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              return a.p_id < b.p_id;
            });
  return out;
}

}  // namespace kcpq
