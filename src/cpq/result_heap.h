// The K-heap of Section 3.8: a bounded max-heap holding the K best items
// found so far, whose top (when full) is the data-driven part of the
// pruning bound T.
//
// The core is the templated BoundedKeyHeap, shared by the CPQ engine's
// ResultHeap (payload-carrying items) and the HS hybrid queue's K-bound
// (key-only items) so the two cannot drift. Keys live in the objective's
// key space (cpq/objective.h): smaller = better for every family, so the
// same max-heap serves closest pairs (key = power-space distance) and
// farthest pairs (key = negated power-space distance) unchanged.

#ifndef KCPQ_CPQ_RESULT_HEAP_H_
#define KCPQ_CPQ_RESULT_HEAP_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "cpq/cpq.h"

namespace kcpq {

/// Keeps the K smallest-keyed items offered so far. `Item` must expose a
/// public `double key`. The heap top (the *largest* kept key) is the bound:
/// an item must beat it to be admitted once the heap is full; equal keys
/// are rejected (first-found wins, the paper's tie handling).
template <typename Item>
class BoundedKeyHeap {
 public:
  explicit BoundedKeyHeap(size_t k) : k_(k) {}

  bool full() const { return items_.size() >= k_; }
  size_t size() const { return items_.size(); }

  /// Key of the current K-th best item; +infinity until full (and always
  /// for k == 0 — the unbounded "fully incremental" mode of the HS queue).
  double Bound() const {
    return !items_.empty() && full()
               ? items_.front().key
               : std::numeric_limits<double>::infinity();
  }

  /// Considers an item; keeps it if it is among the best K so far.
  /// Returns whether it was admitted.
  bool Offer(Item item) {
    if (k_ == 0) return false;
    if (full()) {
      if (item.key >= items_.front().key) return false;
      std::pop_heap(items_.begin(), items_.end(), KeyLess{});
      items_.pop_back();
    }
    items_.push_back(std::move(item));
    std::push_heap(items_.begin(), items_.end(), KeyLess{});
    return true;
  }

  /// Destructively sorts ascending by key and hands the items over.
  std::vector<Item> TakeSorted() && {
    std::sort_heap(items_.begin(), items_.end(), KeyLess{});
    return std::move(items_);
  }

 private:
  struct KeyLess {
    bool operator()(const Item& a, const Item& b) const {
      return a.key < b.key;
    }
  };

  size_t k_;
  std::vector<Item> items_;
};

/// The CPQ result heap: BoundedKeyHeap items carrying the pair payload,
/// plus the key -> reported-distance conversion at extraction. Extraction
/// order is ascending key, i.e. ascending distance for minimizing families
/// and *descending* distance (farthest first) for kFarthest.
class ResultHeap {
 public:
  explicit ResultHeap(size_t k, const QueryObjective& objective = {})
      : heap_(k), objective_(objective) {}

  bool full() const { return heap_.full(); }
  size_t size() const { return heap_.size(); }

  /// Key (see cpq/objective.h) of the current K-th best pair; +infinity
  /// until full.
  double Bound() const { return heap_.Bound(); }

  /// Considers a found pair; keeps it if it is among the best K so far.
  void Offer(double key, const Point& p, const Point& q, uint64_t p_id,
             uint64_t q_id) {
    heap_.Offer(Item{key, p, q, p_id, q_id});
  }

  /// Drains the heap into ascending-key PairResults.
  std::vector<PairResult> Extract() && {
    std::vector<Item> items = std::move(heap_).TakeSorted();
    std::vector<PairResult> out;
    out.reserve(items.size());
    for (const Item& it : items) {
      out.push_back(PairResult{it.p, it.q, it.p_id, it.q_id,
                               objective_.KeyToDistance(it.key)});
    }
    return out;
  }

 private:
  struct Item {
    double key;
    Point p, q;
    uint64_t p_id, q_id;
  };

  BoundedKeyHeap<Item> heap_;
  QueryObjective objective_;
};

}  // namespace kcpq

#endif  // KCPQ_CPQ_RESULT_HEAP_H_
