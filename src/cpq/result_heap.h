// The K-heap of Section 3.8: a bounded max-heap holding the K best pairs
// found so far, whose top (when full) is the data-driven part of the
// pruning bound T.

#ifndef KCPQ_CPQ_RESULT_HEAP_H_
#define KCPQ_CPQ_RESULT_HEAP_H_

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "cpq/cpq.h"

namespace kcpq {

class ResultHeap {
 public:
  explicit ResultHeap(size_t k, Metric metric = Metric::kL2)
      : k_(k), metric_(metric) {}

  bool full() const { return items_.size() == k_; }
  size_t size() const { return items_.size(); }

  /// Power-space distance (see geometry/minkowski.h) of the current K-th
  /// best pair; +infinity until full.
  double Bound() const {
    return full() ? items_.front().dist2
                  : std::numeric_limits<double>::infinity();
  }

  /// Considers a found pair; keeps it if it is among the best K so far.
  void Offer(double dist2, const Point& p, const Point& q, uint64_t p_id,
             uint64_t q_id) {
    if (full()) {
      if (dist2 >= items_.front().dist2) return;
      std::pop_heap(items_.begin(), items_.end());
      items_.pop_back();
    }
    items_.push_back(Item{dist2, p, q, p_id, q_id});
    std::push_heap(items_.begin(), items_.end());
  }

  /// Drains the heap into ascending-distance PairResults.
  std::vector<PairResult> Extract() && {
    std::sort_heap(items_.begin(), items_.end());
    std::vector<PairResult> out;
    out.reserve(items_.size());
    for (const Item& it : items_) {
      out.push_back(PairResult{it.p, it.q, it.p_id, it.q_id,
                               PowToDistance(it.dist2, metric_)});
    }
    return out;
  }

 private:
  struct Item {
    double dist2;
    Point p, q;
    uint64_t p_id, q_id;

    // Max-heap by distance (the farthest kept pair is on top).
    friend bool operator<(const Item& a, const Item& b) {
      return a.dist2 < b.dist2;
    }
  };

  size_t k_;
  Metric metric_;
  std::vector<Item> items_;
};

}  // namespace kcpq

#endif  // KCPQ_CPQ_RESULT_HEAP_H_
