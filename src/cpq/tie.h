// Scoring of the Section 3.6 tie-breaking criteria (T1-T5).
//
// Each criterion maps a node-pair to a double where *smaller is better*, so
// a chain becomes a lexicographic comparison of score arrays. Scores are
// computed once when a candidate pair is created (they are reused by every
// heap sift / sort comparison).

#ifndef KCPQ_CPQ_TIE_H_
#define KCPQ_CPQ_TIE_H_

#include <cstddef>

#include "cpq/cpq.h"
#include "geometry/rect.h"

namespace kcpq {

/// Maximum tie-chain length (all five criteria).
inline constexpr size_t kMaxTieChain = 5;

/// Root-MBR areas (T1's normalization) and the query metric (T2).
struct TieContext {
  double root_area_p = 1.0;
  double root_area_q = 1.0;
  Metric metric = Metric::kL2;
};

/// Fills scores[0 .. chain.size()) for the pair (rp, rq); smaller is
/// preferred. Chains longer than kMaxTieChain are truncated.
void ComputeTieScores(const Rect& rp, const Rect& rq,
                      const std::vector<TieCriterion>& chain,
                      const TieContext& context, double scores[kMaxTieChain]);

}  // namespace kcpq

#endif  // KCPQ_CPQ_TIE_H_
