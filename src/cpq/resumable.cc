#include "cpq/resumable.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "geometry/metrics.h"
#include "obs/explain.h"
#include "obs/trace.h"

namespace kcpq {

using cpq_internal::Candidate;
using cpq_internal::CandidateLess;
using cpq_internal::ChooseDescend;
using cpq_internal::CpqEngine;
using cpq_internal::DescendChoice;
using cpq_internal::MaxPointsOfNode;
using cpq_internal::MinPointsOfNode;
using cpq_internal::NodeRef;

namespace {

// Mirrors engine.cc's file-local helpers (the values must match; both are
// one-liners over public facts, so duplication beats widening the engine's
// internal surface).
int PairLevel(int level_p, int level_q) {
  return level_p > level_q ? level_p : level_q;
}

// RunHeap's pop order (min-heap via reversed CandidateLess).
struct CandidateGreater {
  bool operator()(const Candidate& a, const Candidate& b) const {
    return CandidateLess()(b, a);
  }
};

uint64_t ElapsedNs(std::chrono::steady_clock::time_point from,
                   std::chrono::steady_clock::time_point to) {
  const auto d =
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count();
  return d > 0 ? static_cast<uint64_t>(d) : 0;
}

}  // namespace

ResumableCpqQuery::ResumableCpqQuery(const RStarTree& tree_p,
                                     const RStarTree& tree_q,
                                     CpqOptions options, CpqStats* stats,
                                     Waker waker)
    : options_(std::move(options)),
      engine_(tree_p, tree_q, options_, stats),
      waker_(std::move(waker)) {}

ResumableCpqQuery::~ResumableCpqQuery() = default;

ResumableTask::StepResult ResumableCpqQuery::Park(PageId page) {
  ++engine_.stats_->io_parks;
  park_pending_ = true;
  park_page_ = page;
  park_start_ = std::chrono::steady_clock::now();
  park_trace_ts_ = engine_.trace_ != nullptr ? engine_.trace_->NowNs() : 0;
  return StepResult::kParked;
}

ResumableTask::StepResult ResumableCpqQuery::Fail(Status s) {
  final_status_ = std::move(s);
  phase_ = Phase::kDone;
  return StepResult::kDone;
}

void ResumableCpqQuery::CountRead(const BufferManager::TryReadOutcome& outcome,
                                  bool is_p) {
  if (outcome.hit) return;
  if (engine_.tree_p_.buffer() == engine_.tree_q_.buffer()) {
    // One buffer serves both trees (self-join): the blocking path derives
    // both per-tree counters from the same thread-local delta, so a miss
    // lands in both.
    ++misses_p_;
    ++misses_q_;
  } else if (is_p) {
    ++misses_p_;
  } else {
    ++misses_q_;
  }
  if (outcome.prefetch_claim) ++prefetch_hits_;
}

bool ResumableCpqQuery::StartPhase() {
  CpqEngine& e = engine_;
  *e.stats_ = CpqStats{};
  if (options_.k == 0 || e.tree_p_.size() == 0 || e.tree_q_.size() == 0) {
    return false;
  }
  e.prefetch_.Configure(e.tree_p_.buffer(), e.tree_q_.buffer(),
                        options_.prefetch_window,
                        e.accounting_ ? e.context_ : nullptr);
  root_level_ = PairLevel(e.tree_p_.height() - 1, e.tree_q_.height() - 1);
  if (e.profile_ != nullptr) e.profile_->Considered(root_level_, 1);
  if (e.ShouldStop(0)) {
    e.FoldFrontier(e.objective_.WeakestKey(),
                   std::numeric_limits<uint64_t>::max());
    if (e.profile_ != nullptr) e.profile_->Deferred(root_level_, 1);
    phase_ = Phase::kFinish;
  } else {
    phase_ = Phase::kReadRootP;
  }
  return true;
}

bool ResumableCpqQuery::ReadRoot(bool is_p, StepResult* parked) {
  CpqEngine& e = engine_;
  const RStarTree& tree = is_p ? e.tree_p_ : e.tree_q_;
  QueryContext* read_ctx = e.accounting_ ? e.context_ : nullptr;
  BufferManager::TryReadOutcome outcome;
  const Status s = tree.TryReadNode(tree.root_page(), &node_p_, read_ctx,
                                    waker_, &outcome);
  if (outcome.parked) {
    *parked = Park(tree.root_page());
    return false;
  }
  if (s.code() == StatusCode::kDeadlineExceeded) {
    e.stop_ = StopCause::kDeadline;
    e.FoldFrontier(e.objective_.WeakestKey(),
                   std::numeric_limits<uint64_t>::max());
    if (e.profile_ != nullptr) e.profile_->Deferred(root_level_, 1);
    phase_ = Phase::kFinish;
    return true;
  }
  if (!s.ok()) {
    *parked = Fail(s);
    return false;
  }
  CountRead(outcome, is_p);
  (is_p ? mbr_p_ : mbr_q_) = node_p_.ComputeMbr();
  phase_ = is_p ? Phase::kReadRootQ : Phase::kSeed;
  return true;
}

void ResumableCpqQuery::SeedPhase() {
  CpqEngine& e = engine_;
  e.tie_context_.root_area_p = mbr_p_.Area();
  e.tie_context_.root_area_q = mbr_q_.Area();
  e.tie_context_.metric = options_.metric;

  const NodeRef root_p{e.tree_p_.root_page(), e.tree_p_.height() - 1, mbr_p_,
                       1, e.tree_p_.size()};
  const NodeRef root_q{e.tree_q_.root_page(), e.tree_q_.height() - 1, mbr_q_,
                       1, e.tree_q_.size()};
  Candidate first;
  first.p = root_p;
  first.q = root_q;
  first.key = e.objective_.NodeKey(root_p.mbr, root_q.mbr);
  first.max_pairs = SaturatingMul(root_p.max_points, root_q.max_points);
  if (options_.algorithm == CpqAlgorithm::kHeap) {
    heap_.push_back(first);
    phase_ = Phase::kHeapLoop;
  } else {
    pending_ = first;
    phase_ = Phase::kExpandCheck;
  }
}

ResumableCpqQuery::ReadPairOutcome ResumableCpqQuery::TryReadPair(
    Status* error) {
  CpqEngine& e = engine_;
  QueryContext* read_ctx = e.accounting_ ? e.context_ : nullptr;
  if (!have_p_) {
    BufferManager::TryReadOutcome outcome;
    const Status s =
        e.tree_p_.TryReadNode(cur_p_.page, &node_p_, read_ctx, waker_,
                              &outcome);
    if (outcome.parked) {
      park_page_ = cur_p_.page;
      return ReadPairOutcome::kParked;
    }
    if (s.code() == StatusCode::kDeadlineExceeded) {
      return ReadPairOutcome::kDeadline;
    }
    if (!s.ok()) {
      *error = s;
      return ReadPairOutcome::kError;
    }
    CountRead(outcome, /*is_p=*/true);
    have_p_ = true;
  }
  if (!have_q_) {
    BufferManager::TryReadOutcome outcome;
    const Status s =
        e.tree_q_.TryReadNode(cur_q_.page, &node_q_, read_ctx, waker_,
                              &outcome);
    if (outcome.parked) {
      park_page_ = cur_q_.page;
      return ReadPairOutcome::kParked;
    }
    if (s.code() == StatusCode::kDeadlineExceeded) {
      return ReadPairOutcome::kDeadline;
    }
    if (!s.ok()) {
      *error = s;
      return ReadPairOutcome::kError;
    }
    CountRead(outcome, /*is_p=*/false);
    have_q_ = true;
  }
  // Both nodes resident: the pair counts exactly once, no matter how many
  // parks interleaved — identical to the blocking ReadPair epilogue.
  ++e.stats_->node_pairs_processed;
  e.node_accesses_ += 2;
  cur_p_.level = node_p_.level;
  cur_q_.level = node_q_.level;
  cur_p_.mbr = node_p_.ComputeMbr();
  cur_q_.mbr = node_q_.ComputeMbr();
  cur_p_.min_points = MinPointsOfNode(node_p_, e.tree_p_.min_entries());
  cur_q_.min_points = MinPointsOfNode(node_q_, e.tree_q_.min_entries());
  cur_p_.max_points = MaxPointsOfNode(node_p_, e.tree_p_.max_entries());
  cur_q_.max_points = MaxPointsOfNode(node_q_, e.tree_q_.max_entries());
  if (e.profile_ != nullptr) {
    e.profile_->Visited(PairLevel(node_p_.level, node_q_.level), 1);
  }
  if (e.trace_ != nullptr) {
    obs::TraceEvent ev;
    ev.kind = obs::TraceEventKind::kDescend;
    ev.level_p = static_cast<int16_t>(node_p_.level);
    ev.level_q = static_cast<int16_t>(node_q_.level);
    ev.bound = e.bound_;
    ev.a = cur_p_.page;
    ev.b = cur_q_.page;
    e.trace_->RecordNow(ev);
  }
  return ReadPairOutcome::kOk;
}

void ResumableCpqQuery::AdvanceRecursive() {
  CpqEngine& e = engine_;
  while (!rec_stack_.empty()) {
    RecFrame& f = rec_stack_.back();
    if (f.next >= f.candidates.size()) {
      e.candidate_bytes_ -= f.frame_bytes;
      rec_stack_.pop_back();
      continue;
    }
    const Candidate& cand = f.candidates[f.next++];
    if (e.Prunes() && cand.key > e.bound_) {
      ++e.stats_->candidate_pairs_pruned;
      if (e.profile_ != nullptr) {
        e.profile_->PrunedIneq1(PairLevel(cand.p.level, cand.q.level), 1);
      }
      if (e.trace_ != nullptr) {
        obs::TraceEvent ev;
        ev.kind = obs::TraceEventKind::kPrune;
        ev.level_p = static_cast<int16_t>(cand.p.level);
        ev.level_q = static_cast<int16_t>(cand.q.level);
        ev.value = cand.key;
        ev.bound = e.bound_;
        e.trace_->RecordNow(ev);
      }
      continue;
    }
    if (e.stop_ != StopCause::kNone) {
      e.FoldFrontier(cand.key, cand.max_pairs);
      if (e.profile_ != nullptr) {
        e.profile_->Deferred(PairLevel(cand.p.level, cand.q.level), 1);
      }
      continue;
    }
    pending_ = cand;
    phase_ = Phase::kExpandCheck;
    return;
  }
  phase_ = Phase::kFinish;
}

void ResumableCpqQuery::DrainHeapIntoCertificate(const Candidate& popped) {
  CpqEngine& e = engine_;
  e.FoldFrontier(popped.key, popped.max_pairs);
  if (e.profile_ != nullptr) {
    e.profile_->Deferred(PairLevel(popped.p.level, popped.q.level), 1);
  }
  for (const Candidate& c : heap_) {
    e.FoldFrontier(c.key, c.max_pairs);
    if (e.profile_ != nullptr) {
      e.profile_->Deferred(PairLevel(c.p.level, c.q.level), 1);
    }
  }
  heap_.clear();
}

void ResumableCpqQuery::HeapLoopPhase() {
  CpqEngine& e = engine_;
  if (heap_.empty()) {
    phase_ = Phase::kFinish;
    return;
  }
  e.stats_->max_heap_size =
      std::max<uint64_t>(e.stats_->max_heap_size, heap_.size());
  if (e.prefetch_.enabled()) {
    // Identical speculation block to RunHeap: exact top-W of the frontier
    // in pop order, keyed by rank.
    e.prefetch_.Clear();
    const size_t scan = std::min<size_t>(heap_.size(), 512);
    spec_order_.clear();
    for (uint32_t i = 0; i < scan; ++i) {
      if (heap_[i].key > e.bound_) continue;  // would be CP5-cut
      spec_order_.push_back(i);
    }
    const size_t take = std::min(spec_order_.size(), e.prefetch_.window());
    std::partial_sort(spec_order_.begin(),
                      spec_order_.begin() + static_cast<ptrdiff_t>(take),
                      spec_order_.end(), [this](uint32_t a, uint32_t b) {
                        return CandidateLess()(heap_[a], heap_[b]);
                      });
    for (size_t r = 0; r < take; ++r) {
      const Candidate& c = heap_[spec_order_[r]];
      e.prefetch_.Add(static_cast<double>(r), c.p.page, c.q.page);
    }
    prefetch_issued_ += e.prefetch_.Issue();
  }
  const Candidate top = heap_.front();
  std::pop_heap(heap_.begin(), heap_.end(), CandidateGreater{});
  heap_.pop_back();
  if (e.trace_ != nullptr) {
    obs::TraceEvent ev;
    ev.kind = obs::TraceEventKind::kHeapPop;
    ev.level_p = static_cast<int16_t>(top.p.level);
    ev.level_q = static_cast<int16_t>(top.q.level);
    ev.value = top.key;
    ev.bound = e.bound_;
    e.trace_->RecordNow(ev);
  }
  if (top.key > e.bound_) {
    // CP5: the popped pair and everything still queued are cut off.
    if (e.profile_ != nullptr) {
      e.profile_->PrunedOrder(PairLevel(top.p.level, top.q.level), 1);
      for (const Candidate& c : heap_) {
        e.profile_->PrunedOrder(PairLevel(c.p.level, c.q.level), 1);
      }
    }
    phase_ = Phase::kFinish;
    return;
  }
  if (e.ShouldStop(heap_.size() * sizeof(Candidate))) {
    DrainHeapIntoCertificate(top);
    phase_ = Phase::kFinish;
    return;
  }
  // The pop committed before any read: a park during the reads resumes at
  // kHeapRead and can never re-pop (or re-poll) this pair.
  pending_ = top;
  cur_p_ = top.p;
  cur_q_ = top.q;
  have_p_ = have_q_ = false;
  phase_ = Phase::kHeapRead;
}

ResumableTask::StepResult ResumableCpqQuery::Step() {
  if (park_pending_) {
    park_pending_ = false;
    const uint64_t dur =
        ElapsedNs(park_start_, std::chrono::steady_clock::now());
    engine_.stats_->io_parked_ns += dur;
    if (engine_.trace_ != nullptr) {
      obs::TraceEvent ev;
      ev.kind = obs::TraceEventKind::kIoPark;
      ev.ts_ns = park_trace_ts_;
      ev.dur_ns = dur > 0 ? dur : 1;
      ev.a = park_page_;
      engine_.trace_->Record(ev);
    }
  }

  for (;;) {
    switch (phase_) {
      case Phase::kStart: {
        if (!StartPhase()) {
          final_status_ = Status::OK();
          phase_ = Phase::kDone;
          return StepResult::kDone;
        }
        continue;
      }
      case Phase::kReadRootP: {
        StepResult r = StepResult::kDone;
        if (!ReadRoot(/*is_p=*/true, &r)) return r;
        continue;
      }
      case Phase::kReadRootQ: {
        StepResult r = StepResult::kDone;
        if (!ReadRoot(/*is_p=*/false, &r)) return r;
        continue;
      }
      case Phase::kSeed: {
        SeedPhase();
        continue;
      }
      case Phase::kExpandCheck: {
        CpqEngine& e = engine_;
        const NodeRef& rp = pending_.p;
        const NodeRef& rq = pending_.q;
        if (e.ShouldStop(0)) {
          e.FoldFrontier(e.objective_.NodeKey(rp.mbr, rq.mbr),
                         SaturatingMul(rp.max_points, rq.max_points));
          if (e.profile_ != nullptr) {
            e.profile_->Deferred(PairLevel(rp.level, rq.level), 1);
          }
          AdvanceRecursive();
          continue;
        }
        cur_p_ = rp;
        cur_q_ = rq;
        have_p_ = have_q_ = false;
        phase_ = Phase::kExpandRead;
        continue;
      }
      case Phase::kExpandRead: {
        CpqEngine& e = engine_;
        Status err;
        const ReadPairOutcome r = TryReadPair(&err);
        if (r == ReadPairOutcome::kParked) return Park(park_page_);
        if (r == ReadPairOutcome::kError) return Fail(err);
        if (r == ReadPairOutcome::kDeadline) {
          // The pair stays unexpanded; fold the *original* refs (pending_),
          // not the partially refreshed cur_* — same as blocking.
          e.stop_ = StopCause::kDeadline;
          const NodeRef& rp = pending_.p;
          const NodeRef& rq = pending_.q;
          e.FoldFrontier(e.objective_.NodeKey(rp.mbr, rq.mbr),
                         SaturatingMul(rp.max_points, rq.max_points));
          if (e.profile_ != nullptr) {
            e.profile_->Deferred(PairLevel(rp.level, rq.level), 1);
          }
          AdvanceRecursive();
          continue;
        }
        const DescendChoice choice = ChooseDescend(
            node_p_.level, node_q_.level, options_.height_strategy);
        if (choice == DescendChoice::kLeaves) {
          e.ProcessLeaves(node_p_, node_q_, cur_p_.page == cur_q_.page);
          AdvanceRecursive();
          continue;
        }
        rec_stack_.emplace_back();
        RecFrame& f = rec_stack_.back();
        e.GenerateCandidates(cur_p_, node_p_, cur_q_, node_q_, choice,
                             &f.candidates);
        if (e.TightensBound()) {
          e.TightenBoundFromCandidates(f.candidates);
          e.NoteBoundImprovement();
        }
        f.frame_bytes = f.candidates.size() * sizeof(Candidate);
        e.candidate_bytes_ += f.frame_bytes;
        if (options_.algorithm == CpqAlgorithm::kSortedDistances) {
          std::sort(f.candidates.begin(), f.candidates.end(),
                    CandidateLess());
        }
        if (e.prefetch_.enabled() && !f.candidates.empty()) {
          e.prefetch_.Clear();
          size_t added = 0;
          for (const Candidate& cand : f.candidates) {
            if (added >= e.prefetch_.window()) break;
            if (e.Prunes() && cand.key > e.bound_) continue;
            e.prefetch_.Add(cand.key, cand.p.page, cand.q.page);
            ++added;
          }
          prefetch_issued_ += e.prefetch_.Issue();
        }
        AdvanceRecursive();
        continue;
      }
      case Phase::kHeapLoop: {
        HeapLoopPhase();
        continue;
      }
      case Phase::kHeapRead: {
        CpqEngine& e = engine_;
        Status err;
        const ReadPairOutcome r = TryReadPair(&err);
        if (r == ReadPairOutcome::kParked) return Park(park_page_);
        if (r == ReadPairOutcome::kError) return Fail(err);
        if (r == ReadPairOutcome::kDeadline) {
          e.stop_ = StopCause::kDeadline;
          DrainHeapIntoCertificate(pending_);
          phase_ = Phase::kFinish;
          continue;
        }
        const DescendChoice choice = ChooseDescend(
            node_p_.level, node_q_.level, options_.height_strategy);
        if (choice == DescendChoice::kLeaves) {
          e.ProcessLeaves(node_p_, node_q_, cur_p_.page == cur_q_.page);
          phase_ = Phase::kHeapLoop;
          continue;
        }
        e.GenerateCandidates(cur_p_, node_p_, cur_q_, node_q_, choice,
                             &candidates_scratch_);
        e.TightenBoundFromCandidates(candidates_scratch_);
        e.NoteBoundImprovement();
        for (const Candidate& cand : candidates_scratch_) {
          if (cand.key > e.bound_) {
            ++e.stats_->candidate_pairs_pruned;
            if (e.profile_ != nullptr) {
              e.profile_->PrunedIneq1(PairLevel(cand.p.level, cand.q.level),
                                      1);
            }
            if (e.trace_ != nullptr) {
              obs::TraceEvent ev;
              ev.kind = obs::TraceEventKind::kPrune;
              ev.level_p = static_cast<int16_t>(cand.p.level);
              ev.level_q = static_cast<int16_t>(cand.q.level);
              ev.value = cand.key;
              ev.bound = e.bound_;
              e.trace_->RecordNow(ev);
            }
            continue;
          }
          if (e.trace_ != nullptr) {
            obs::TraceEvent ev;
            ev.kind = obs::TraceEventKind::kHeapPush;
            ev.level_p = static_cast<int16_t>(cand.p.level);
            ev.level_q = static_cast<int16_t>(cand.q.level);
            ev.value = cand.key;
            ev.bound = e.bound_;
            e.trace_->RecordNow(ev);
          }
          heap_.push_back(cand);
          std::push_heap(heap_.begin(), heap_.end(), CandidateGreater{});
        }
        phase_ = Phase::kHeapLoop;
        continue;
      }
      case Phase::kFinish: {
        CpqEngine& e = engine_;
        // No DrainPrefetches here: under the scheduler many queries share
        // the buffers and a per-query drain would discard the siblings'
        // staged pages. The batch executor settles speculation once after
        // the whole run (and sole-query callers drain explicitly).
        e.stats_->disk_accesses_p = misses_p_;
        e.stats_->disk_accesses_q = misses_q_;
        e.stats_->node_accesses = e.node_accesses_;
        e.stats_->prefetch_issued = prefetch_issued_;
        e.stats_->prefetch_hits = prefetch_hits_;
        e.FinalizeQualityAndTrace();
        results_out_ = std::move(e.results_).Extract();
        final_status_ = Status::OK();
        phase_ = Phase::kDone;
        return StepResult::kDone;
      }
      case Phase::kDone:
        return StepResult::kDone;
    }
  }
}

}  // namespace kcpq
