#include "cpq/distance_join.h"

#include <algorithm>
#include <string>

#include "cpq/engine.h"

namespace kcpq {

namespace {

using cpq_internal::ChooseDescend;
using cpq_internal::DescendChoice;
using cpq_internal::MaxPointsOfNode;

uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  return a + b < a ? std::numeric_limits<uint64_t>::max() : a + b;
}

// M^(level+1): saturating upper bound on points in a subtree rooted at
// `level`; level -1 (a leaf's entry) is a single point.
uint64_t MaxPointsAtLevel(int level, uint64_t max_entries) {
  uint64_t n = 1;
  for (int i = 0; i <= level; ++i) n = SaturatingMul(n, max_entries);
  return n;
}

// Recursive ε-join worker over two subtrees identified by page ids.
class JoinWalker {
 public:
  JoinWalker(const RStarTree& tree_p, const RStarTree& tree_q,
             double epsilon_pow, const DistanceJoinOptions& options,
             QueryContext* ctx, bool accounting, CpqStats* stats,
             std::vector<PairResult>* out)
      : tree_p_(tree_p),
        tree_q_(tree_q),
        epsilon_pow_(epsilon_pow),
        options_(options),
        ctx_(ctx),
        accounting_(accounting),
        stats_(stats),
        out_(out) {}

  /// `minmin_pow` is the pair's own MINMINDIST (power space) and
  /// `max_pairs` its pair capacity (upper bound on point pairs beneath),
  /// both precomputed by the caller — on a stop they become frontier
  /// certificate instead of work.
  Status Walk(PageId page_p, PageId page_q, double minmin_pow,
              uint64_t max_pairs) {
    if (ShouldStop()) {
      FoldFrontier(minmin_pow, max_pairs);
      return Status::OK();
    }

    QueryContext* read_ctx = accounting_ ? ctx_ : nullptr;
    Node node_p, node_q;
    Status read_status = tree_p_.ReadNode(page_p, &node_p, read_ctx);
    if (read_status.ok()) {
      read_status = tree_q_.ReadNode(page_q, &node_q, read_ctx);
    }
    if (read_status.code() == StatusCode::kDeadlineExceeded) {
      stop_ = StopCause::kDeadline;
      FoldFrontier(minmin_pow, max_pairs);
      return Status::OK();
    }
    KCPQ_RETURN_IF_ERROR(read_status);
    ++stats_->node_pairs_processed;
    node_accesses_ += 2;

    const DescendChoice choice = ChooseDescend(node_p.level, node_q.level,
                                               options_.height_strategy);
    if (choice == DescendChoice::kLeaves) {
      return EmitLeafPairs(node_p, node_q, page_p == page_q);
    }
    const bool expand_p = choice != DescendChoice::kSecondOnly;
    const bool expand_q = choice != DescendChoice::kFirstOnly;
    const Rect whole_p = node_p.ComputeMbr();
    const Rect whole_q = node_q.ComputeMbr();
    // Per-side pair-capacity factors for the missing-pair certificate: an
    // expanded side contributes one child subtree's capacity, a fixed side
    // the whole node's.
    const uint64_t cap_p =
        expand_p ? MaxPointsAtLevel(node_p.level - 1, tree_p_.max_entries())
                 : MaxPointsOfNode(node_p, tree_p_.max_entries());
    const uint64_t cap_q =
        expand_q ? MaxPointsAtLevel(node_q.level - 1, tree_q_.max_entries())
                 : MaxPointsOfNode(node_q, tree_q_.max_entries());
    const uint64_t child_max_pairs = SaturatingMul(cap_p, cap_q);
    const size_t np = expand_p ? node_p.entries.size() : 1;
    const size_t nq = expand_q ? node_q.entries.size() : 1;
    for (size_t i = 0; i < np; ++i) {
      const Rect& rp = expand_p ? node_p.entries[i].rect : whole_p;
      for (size_t j = 0; j < nq; ++j) {
        const Rect& rq = expand_q ? node_q.entries[j].rect : whole_q;
        // Self-join: same-node expansions cover each unordered child pair
        // twice; keep the page-ordered orientation (see cpq/engine.cc).
        if (options_.self_join && page_p == page_q && expand_p && expand_q &&
            node_p.entries[i].id > node_q.entries[j].id) {
          continue;
        }
        ++stats_->candidate_pairs_generated;
        const double child_minmin = MinMinDistPow(rp, rq, options_.metric);
        if (child_minmin > epsilon_pow_) {
          ++stats_->candidate_pairs_pruned;
          continue;
        }
        // Drain once stopped (possibly by a deeper recursion).
        if (stop_ != StopCause::kNone) {
          FoldFrontier(child_minmin, child_max_pairs);
          continue;
        }
        KCPQ_RETURN_IF_ERROR(
            Walk(expand_p ? node_p.entries[i].id : page_p,
                 expand_q ? node_q.entries[j].id : page_q, child_minmin,
                 child_max_pairs));
      }
    }
    return Status::OK();
  }

  uint64_t node_accesses() const { return node_accesses_; }
  StopCause stop_cause() const { return stop_; }
  double frontier_min_pow() const { return frontier_min_pow_; }
  uint64_t missing_pair_bound() const { return missing_pair_bound_; }

 private:
  bool ShouldStop() {
    if (stop_ != StopCause::kNone) return true;
    if (!accounting_) return false;
    stop_ = ctx_->Check(node_accesses_, out_->size() * sizeof(PairResult));
    return stop_ != StopCause::kNone;
  }

  // Records a deferred (unexpanded) node pair: its MINMINDIST joins the
  // scalar frontier bound, and — when it could still hold qualifying
  // pairs — its pair capacity joins the capacity-weighted count of pairs
  // the partial result may be missing.
  void FoldFrontier(double minmin_pow, uint64_t max_pairs) {
    frontier_min_pow_ = std::min(frontier_min_pow_, minmin_pow);
    if (minmin_pow <= epsilon_pow_) {
      missing_pair_bound_ =
          SaturatingAdd(missing_pair_bound_, std::max<uint64_t>(max_pairs, 1));
    }
  }
  Status EmitLeafPairs(const Node& node_p, const Node& node_q,
                       bool same_node) {
    // Shared by both kernels; returns false (aborting the enumeration) only
    // when the max_results valve trips, leaving the error in `status`.
    Status status;
    const auto consider = [&](const Entry& ep, const Entry& eq) {
      if (options_.self_join) {
        if (same_node) {
          if (ep.id >= eq.id) return true;
        } else if (ep.id == eq.id) {
          return true;
        }
      }
      ++stats_->point_distance_computations;
      const double d = MinMinDistPow(ep.rect, eq.rect, options_.metric);
      if (d > epsilon_pow_) return true;
      if (options_.max_results > 0 && out_->size() >= options_.max_results) {
        status = Status::ResourceExhausted(
            "distance join exceeded max_results = " +
            std::to_string(options_.max_results));
        return false;
      }
      Point p, q;
      ClosestPoints(ep.rect, eq.rect, &p, &q);
      if (options_.self_join && ep.id > eq.id) {
        out_->push_back(PairResult{q, p, eq.id, ep.id,
                                   PowToDistance(d, options_.metric)});
      } else {
        out_->push_back(PairResult{
            p, q, ep.id, eq.id, PowToDistance(d, options_.metric)});
      }
      return true;
    };

    if (options_.leaf_kernel == LeafKernel::kPlaneSweep) {
      // strict = true: the join keeps distance == ε exactly, so only pairs
      // whose axis separation strictly exceeds ε are provably rejectable.
      const uint64_t total = static_cast<uint64_t>(node_p.entries.size()) *
                             node_q.entries.size();
      const uint64_t visited = cpq_internal::PlaneSweepPairs(
          node_p.entries, node_q.entries, options_.metric, /*strict=*/true,
          &sweep_scratch_,
          [](const Entry& e) -> const Rect& { return e.rect; },
          [&] { return epsilon_pow_; }, consider);
      if (status.ok()) stats_->leaf_pairs_skipped += total - visited;
    } else {
      for (const Entry& ep : node_p.entries) {
        for (const Entry& eq : node_q.entries) {
          if (!consider(ep, eq)) return status;
        }
      }
    }
    return status;
  }

  const RStarTree& tree_p_;
  const RStarTree& tree_q_;
  const double epsilon_pow_;
  const DistanceJoinOptions& options_;
  QueryContext* ctx_;
  bool accounting_;
  CpqStats* stats_;
  std::vector<PairResult>* out_;
  cpq_internal::SweepScratch<Entry> sweep_scratch_;
  uint64_t node_accesses_ = 0;
  StopCause stop_ = StopCause::kNone;
  double frontier_min_pow_ = std::numeric_limits<double>::infinity();
  uint64_t missing_pair_bound_ = 0;
};

void SortResults(std::vector<PairResult>* out) {
  std::sort(out->begin(), out->end(),
            [](const PairResult& a, const PairResult& b) {
              if (a.distance != b.distance) return a.distance < b.distance;
              if (a.p_id != b.p_id) return a.p_id < b.p_id;
              return a.q_id < b.q_id;
            });
}

}  // namespace

Result<std::vector<PairResult>> DistanceRangeJoin(
    const RStarTree& tree_p, const RStarTree& tree_q, double epsilon,
    const DistanceJoinOptions& options, CpqStats* stats) {
  if (epsilon < 0.0) {
    return Status::InvalidArgument("epsilon must be non-negative");
  }
  CpqStats local;
  CpqStats* s = stats != nullptr ? stats : &local;
  *s = CpqStats{};
  std::vector<PairResult> out;
  if (tree_p.size() == 0 || tree_q.size() == 0) return out;

  // An external context supersedes `control` (same rule as CpqOptions).
  QueryContext local_ctx(options.control);
  QueryContext* ctx = options.context != nullptr ? options.context
                                                 : &local_ctx;
  const bool accounting =
      options.context != nullptr || !ctx->control().IsUnlimited();

  // Pre-trip check: a pre-cancelled or pre-expired join touches no pages.
  // Nothing was examined, so certify nothing: bound 0, not exact.
  const StopCause pre = accounting ? ctx->Check(0, 0) : StopCause::kNone;
  if (pre != StopCause::kNone) {
    s->quality.stop_cause = pre;
    s->quality.guaranteed_lower_bound = 0.0;
    s->quality.is_exact = false;
    // Nothing was examined: every cross-product pair may be missing.
    s->quality.missing_pair_bound = SaturatingMul(tree_p.size(),
                                                  tree_q.size());
    return out;
  }

  const BufferStats before_p = tree_p.buffer()->ThreadStats();
  const BufferStats before_q = tree_q.buffer()->ThreadStats();
  const double epsilon_pow = DistanceToPow(epsilon, options.metric);
  JoinWalker walker(tree_p, tree_q, epsilon_pow, options, ctx, accounting, s,
                    &out);
  QueryContext* read_ctx = accounting ? ctx : nullptr;
  Rect mbr_p, mbr_q;
  Status root_status = tree_p.RootMbr(&mbr_p, read_ctx);
  if (root_status.ok()) root_status = tree_q.RootMbr(&mbr_q, read_ctx);
  StopCause stop;
  double frontier_pow;
  uint64_t missing_pair_bound;
  if (root_status.code() == StatusCode::kDeadlineExceeded) {
    // Storage abandoned a retry before anything was examined: partial
    // with a vacuous certificate, same as a pre-expired deadline.
    stop = StopCause::kDeadline;
    frontier_pow = 0.0;
    missing_pair_bound = SaturatingMul(tree_p.size(), tree_q.size());
  } else {
    KCPQ_RETURN_IF_ERROR(root_status);
    KCPQ_RETURN_IF_ERROR(walker.Walk(tree_p.root_page(), tree_q.root_page(),
                                     MinMinDistPow(mbr_p, mbr_q,
                                                   options.metric),
                                     SaturatingMul(tree_p.size(),
                                                   tree_q.size())));
    stop = walker.stop_cause();
    frontier_pow = walker.frontier_min_pow();
    missing_pair_bound = walker.missing_pair_bound();
  }
  s->disk_accesses_p = tree_p.buffer()->ThreadStats().misses - before_p.misses;
  s->disk_accesses_q = tree_q.buffer()->ThreadStats().misses - before_q.misses;
  s->node_accesses = walker.node_accesses();
  s->quality.stop_cause = stop;
  s->quality.pairs_found = out.size();
  if (stop != StopCause::kNone) {
    s->quality.guaranteed_lower_bound =
        PowToDistance(frontier_pow, options.metric);
    // The stop is harmless when nothing qualifying was left unexpanded:
    // an empty frontier, or one entirely beyond ε.
    s->quality.is_exact = frontier_pow > epsilon_pow;
    if (!s->quality.is_exact) {
      s->quality.missing_pair_bound = missing_pair_bound;
    }
  }
  SortResults(&out);
  return out;
}

std::vector<PairResult> BruteForceDistanceRangeJoin(
    const std::vector<std::pair<Point, uint64_t>>& p,
    const std::vector<std::pair<Point, uint64_t>>& q, double epsilon,
    bool self_join, Metric metric) {
  std::vector<PairResult> out;
  const double epsilon_pow = DistanceToPow(epsilon, metric);
  for (const auto& [pp, pid] : p) {
    for (const auto& [qq, qid] : q) {
      if (self_join && pid >= qid) continue;
      const double d = PointDistancePow(pp, qq, metric);
      if (d > epsilon_pow) continue;
      out.push_back(PairResult{pp, qq, pid, qid, PowToDistance(d, metric)});
    }
  }
  SortResults(&out);
  return out;
}

}  // namespace kcpq
