// QueryObjective: the policy that turns the branch-and-bound engine into a
// family of queries instead of one.
//
// The paper's K-CPQ algorithms are one instantiation of a more general MBR
// branch-and-bound: order candidate node pairs by an optimistic bound,
// prune the ones that provably cannot beat the K-th best result, and stop
// when the frontier proves optimality. Which bound, which direction, and
// which pairs are eligible is the *objective*; everything else (descent,
// heaps, prefetch, resumable state machines, certificates) is shared.
//
// The whole engine works in a single **key space**: every candidate and
// result carries a `double key`, smaller = more promising, and all
// machinery — candidate ordering, the pair min-heap, the CP5 cutoff, the
// prune test `key > T`, prefetch pop-order selection, frontier folds, and
// the per-rank certificate — is written against keys ascending. The
// objective defines the mapping:
//
//   family        key of a node pair            key of a point pair
//   ------------  ----------------------------  -------------------
//   kClosest      MINMINDIST (power space)      distance (power)
//   kFarthest     -MAXMAXDIST (power space)     -distance (power)
//   kRangeClosest MINMINDIST (power space)      distance (power)
//
// Negating MAXMAXDIST makes "ascending key" mean "descending farthest
// bound", so the farthest-pairs query reuses the min-heap, the `key > T`
// prune, and the ascending prefetch order unchanged. Soundness carries
// over symmetrically: for closest pairs MINMINDIST lower-bounds every pair
// distance beneath a node pair, hence (node key) <= (any pair key beneath
// it); for farthest pairs MAXMAXDIST upper-bounds every pair distance, so
// -MAXMAXDIST again satisfies (node key) <= (any pair key beneath it).
// That single inequality is all the engine ever relies on.
//
// Only the edges dispatch on family: converting a key back to a distance,
// whether a reported bound is a lower or an upper bound (certificate
// direction), whether the plane-sweep leaf kernel's axis-gap skip is
// sound, whether candidate capacities may tighten T, and — for the
// range-restricted family — which subtrees and leaf pairs are eligible
// at all.

#ifndef KCPQ_CPQ_OBJECTIVE_H_
#define KCPQ_CPQ_OBJECTIVE_H_

#include <algorithm>
#include <limits>

#include "geometry/minkowski.h"
#include "geometry/rect.h"

namespace kcpq {

/// Which optimisation problem the branch-and-bound solves.
enum class QueryFamily {
  /// The paper's K closest pairs (ascending distance).
  kClosest,
  /// K farthest pairs: MAXMAXDIST-driven, results descending by distance,
  /// anytime certificates are *upper* bounds.
  kFarthest,
  /// Range-restricted closest pairs (Xue et al. / Chan-Rahul-Xue): the K
  /// closest pairs whose two points both lie inside a query rectangle.
  kRangeClosest,
};

const char* QueryFamilyName(QueryFamily f);

namespace obs {
class Histogram;  // obs/metrics.h
}  // namespace obs

/// The per-family latency histogram (kcpq_query_seconds_<family>) every
/// engine folds its wall clock into, so family p50/p99 are derivable from
/// /metrics alone. Defined in cpq.cc next to the name table.
obs::Histogram* FamilyQuerySeconds(QueryFamily f);

/// Value-type policy consumed by CpqEngine, the resumable state machines,
/// the HS hybrid queue, and the CLI/EXPLAIN edges. Cheap to copy.
class QueryObjective {
 public:
  QueryObjective() = default;
  QueryObjective(QueryFamily family, Metric metric, const Rect& rect = Rect{})
      : family_(family), metric_(metric), rect_(rect) {}

  QueryFamily family() const { return family_; }
  Metric metric() const { return metric_; }
  const Rect& rect() const { return rect_; }

  /// Smaller key = smaller distance. Everything distance-monotone (axis-gap
  /// sweep skips, capacity-based tightening via MINMAXDIST/MAXMAXDIST
  /// counting) is sound exactly for minimizing objectives.
  bool minimizing() const { return family_ != QueryFamily::kFarthest; }

  /// True when a query rectangle restricts pair eligibility.
  bool restricted() const { return family_ == QueryFamily::kRangeClosest; }

  /// Key of a candidate node pair: optimistic bound over all point pairs
  /// beneath it. Invariant: NodeKey(a, b) <= LeafKey of every eligible
  /// pair under (a, b).
  double NodeKey(const Rect& a, const Rect& b) const {
    return minimizing() ? MinMinDistPow(a, b, metric_)
                        : -MaxMaxDistPow(a, b, metric_);
  }

  /// Key of a leaf pair (entry rects; degenerate rects = points, where
  /// MINMIN == MAXMAX == the point distance, so both families are exact).
  double LeafKey(const Rect& a, const Rect& b) const {
    return minimizing() ? MinMinDistPow(a, b, metric_)
                        : -MaxMaxDistPow(a, b, metric_);
  }

  /// The most optimistic key any pair can have: the root pre-trip frontier
  /// fold, and the identity for min-folds over keys.
  double WeakestKey() const {
    return minimizing() ? 0.0 : -std::numeric_limits<double>::infinity();
  }

  /// Key -> true distance (for results and certificates). Handles the
  /// +infinity "uncovered rank" sentinel: for minimizing objectives it
  /// stays +infinity (vacuous lower bound), for kFarthest it collapses to
  /// 0 (the strongest upper bound: nothing farther than 0 is missing).
  double KeyToDistance(double key) const {
    const double pow = minimizing() ? key : -key;
    return PowToDistance(std::max(0.0, pow), metric_);
  }

  /// Interior pre-prune for the restricted family: a subtree whose MBR has
  /// positive MINMINDIST to the query rect contains no eligible point, so
  /// node pairs involving it are skipped at generation time (they are
  /// never "considered", keeping the EXPLAIN accounting identity intact).
  bool SubtreeEligible(const Rect& mbr) const {
    return !restricted() || MinMinDistPow(mbr, rect_, metric_) == 0.0;
  }

  /// Leaf-pair eligibility: both points (entry rects) inside the rect.
  bool LeafPairEligible(const Rect& ep, const Rect& eq) const {
    return !restricted() || (rect_.Contains(ep) && rect_.Contains(eq));
  }

  /// Whether T may be tightened from candidate capacities (the K=1
  /// MINMAXDIST rule and the Section 3.8 guaranteed-count bound, or their
  /// farthest mirror). Unsound for kRangeClosest: the counted pairs may
  /// lie outside the rectangle, so only found results tighten T there.
  bool CanTightenFromCapacities() const {
    return family_ != QueryFamily::kRangeClosest;
  }

  /// Whether the plane-sweep leaf kernel applies. The sweep skip relies on
  /// AxisGapPow *lower-bounding* the pair's key, which holds only when
  /// smaller distance means smaller key; kFarthest falls back to the
  /// nested loop.
  bool SweepUsable() const { return minimizing(); }

  /// Certificate direction: kFarthest certifies "every missing pair is at
  /// most this far" — an upper bound (QueryQuality::bound_is_upper).
  bool BoundIsUpper() const { return family_ == QueryFamily::kFarthest; }

 private:
  QueryFamily family_ = QueryFamily::kClosest;
  Metric metric_ = Metric::kL2;
  Rect rect_{};
};

}  // namespace kcpq

#endif  // KCPQ_CPQ_OBJECTIVE_H_
