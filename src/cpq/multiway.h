// Multi-way K closest tuples (the paper's future-work direction (a),
// Section 6: "the study of multi-way CPQs where tuples of objects are
// expected to be the answers, extending related work in multi-way spatial
// joins").
//
// Given m point sets R_1..R_m, each in an R*-tree, and a query graph of
// distance edges over {1..m}, find the K tuples (p_1, ..., p_m) with the
// smallest aggregate distance
//
//     D(t) = sum over edges (a, b) of dist(p_a, p_b).
//
// The classic two-set K-CPQ is the m = 2, single-edge special case.
//
// Algorithm: best-first synchronous traversal. The priority queue holds
// m-tuples of tree nodes keyed by the lower bound
//   sum over edges of MINMINDIST(M_a, M_b)
// (valid by Inequality 1 applied per edge). Expanding a tuple descends
// *one* slot — the deepest remaining node, ties by larger MBR area — so
// the branching factor stays at the fanout instead of fanout^m. When all
// slots are leaves, the entry combinations are enumerated with partial-sum
// pruning against the K-th best aggregate so far.

#ifndef KCPQ_CPQ_MULTIWAY_H_
#define KCPQ_CPQ_MULTIWAY_H_

#include <vector>

#include "cpq/cpq.h"

namespace kcpq {

/// One undirected distance edge of the query graph; 0-based tree indices.
struct MultiwayEdge {
  int a = 0;
  int b = 0;
};

struct MultiwayOptions {
  size_t k = 1;
  Metric metric = Metric::kL2;
  /// Safety valve on the tuple heap (the search space is exponential in m
  /// for adversarial inputs). 0 = unlimited. Unlike the lifecycle limits
  /// below this is an *error* valve: tripping it returns
  /// ResourceExhausted, not a partial result (an unbounded heap is a
  /// malformed query, not a slow one).
  uint64_t max_heap_items = 0;

  /// Lifecycle limits (see CpqOptions::control). The best-first traversal
  /// pops tuples in ascending bound order, so on a stop the last popped
  /// bound certifies every unreported tuple's aggregate distance — the
  /// natural anytime certificate the two-tree engines get from their
  /// frontier minimum.
  QueryControl control;

  /// Optional externally-owned QueryContext; supersedes `control` and adds
  /// buffer-page accounting (see CpqOptions::context).
  QueryContext* context = nullptr;
};

/// One result tuple: points[i]/ids[i] come from trees[i].
struct TupleResult {
  std::vector<Point> points;
  std::vector<uint64_t> ids;
  /// Sum of true distances over the query graph's edges.
  double aggregate_distance = 0.0;
};

/// Finds the `options.k` closest tuples. Requirements: >= 2 trees, a
/// non-empty edge list with valid distinct endpoints. Returns fewer than k
/// tuples when the cross product is smaller. `stats` counts node accesses
/// across all trees (disk_accesses_p aggregates every tree).
Result<std::vector<TupleResult>> MultiwayKClosestTuples(
    const std::vector<const RStarTree*>& trees,
    const std::vector<MultiwayEdge>& graph, const MultiwayOptions& options,
    CpqStats* stats = nullptr);

/// Brute-force reference for tests: enumerates the full cross product.
std::vector<TupleResult> BruteForceMultiwayKClosestTuples(
    const std::vector<std::vector<std::pair<Point, uint64_t>>>& sets,
    const std::vector<MultiwayEdge>& graph, size_t k,
    Metric metric = Metric::kL2);

}  // namespace kcpq

#endif  // KCPQ_CPQ_MULTIWAY_H_
