// CPQ plan chooser — the paper's experimental guidelines (Sections 4.4 and
// 5.3) as executable query-optimizer logic.
//
// Given the facts an optimizer knows before running the query (tree
// cardinalities and heights, workspace MBRs, buffer budget, K), picks the
// algorithm and height strategy the paper's study prescribes:
//
//   * zero / tiny buffer  -> HEAP (best without cache, esp. overlapping)
//   * buffer > 4 pages    -> STD  (exploits the buffer; HEAP doesn't)
//   * different heights   -> fix-at-root (Section 4.2), except STD on
//     disjoint workspaces where fix-at-leaves measured better
//
// The estimated workspace overlap comes from the root MBRs; the cost model
// (cost_model.h) supplies the predicted disk accesses recorded in the plan
// for EXPLAIN-style output.

#ifndef KCPQ_CPQ_PLANNER_H_
#define KCPQ_CPQ_PLANNER_H_

#include <string>

#include "cpq/cost_model.h"
#include "cpq/cpq.h"

namespace kcpq {

/// A chosen plan plus the evidence behind it.
struct CpqPlan {
  CpqOptions options;
  /// Estimated fraction of the two workspaces' union covered by their
  /// intersection, in [0, 1].
  double estimated_overlap = 0.0;
  /// Cost-model prediction of disk accesses (uniformity assumption).
  double estimated_disk_accesses = 0.0;
  /// Human-readable one-line rationale.
  std::string rationale;
};

/// Chooses options for a K-CPQ between `tree_p` and `tree_q` with a total
/// LRU buffer of `buffer_pages_total` pages (split B/2 per tree). Reads
/// only the root pages.
Result<CpqPlan> PlanKClosestPairs(const RStarTree& tree_p,
                                  const RStarTree& tree_q, size_t k,
                                  size_t buffer_pages_total);

}  // namespace kcpq

#endif  // KCPQ_CPQ_PLANNER_H_
