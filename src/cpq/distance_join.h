// Distance range join (ε-join): report every pair (p, q) in P x Q with
// dist(p, q) <= epsilon. The fixed-radius sibling of the K-CPQ — the same
// MINMINDIST pruning applies with a constant bound instead of an evolving
// one, so it shares the traversal machinery of the cpq engine.

#ifndef KCPQ_CPQ_DISTANCE_JOIN_H_
#define KCPQ_CPQ_DISTANCE_JOIN_H_

#include <vector>

#include "cpq/cpq.h"

namespace kcpq {

struct DistanceJoinOptions {
  Metric metric = Metric::kL2;
  HeightStrategy height_strategy = HeightStrategy::kFixAtRoot;
  /// Self-join semantics as in SelfKClosestPairs: both trees are the same,
  /// reflexive pairs skipped, each unordered pair reported once.
  bool self_join = false;
  /// Safety valve: fail with ResourceExhausted instead of materializing
  /// more result pairs than this (an over-large epsilon can ask for the
  /// whole cross product). 0 = unlimited.
  uint64_t max_results = 0;
  /// Leaf node-pair combination strategy (see CpqOptions::leaf_kernel);
  /// the sweep skips pairs whose sweep-axis separation alone exceeds ε.
  LeafKernel leaf_kernel = LeafKernel::kPlaneSweep;

  /// Lifecycle limits (see CpqOptions::control). A stopped join returns OK
  /// with the pairs found so far; quality.guaranteed_lower_bound certifies
  /// that every *unreported* qualifying pair is at least that far apart
  /// (so is_exact holds when the frontier lies beyond ε), and
  /// quality.missing_pair_bound caps how many qualifying pairs the partial
  /// result can be missing (the sum of pair capacities over deferred node
  /// pairs with MINMINDIST <= ε). The memory budget meters the
  /// materialized result vector.
  QueryControl control;

  /// Optional externally-owned QueryContext; supersedes `control` and adds
  /// buffer-page accounting (see CpqOptions::context).
  QueryContext* context = nullptr;
};

/// All pairs within `epsilon` (a true distance, not power-space), in
/// ascending distance order. `epsilon` must be >= 0.
Result<std::vector<PairResult>> DistanceRangeJoin(
    const RStarTree& tree_p, const RStarTree& tree_q, double epsilon,
    const DistanceJoinOptions& options = {}, CpqStats* stats = nullptr);

/// Brute-force reference (tests/benches).
std::vector<PairResult> BruteForceDistanceRangeJoin(
    const std::vector<std::pair<Point, uint64_t>>& p,
    const std::vector<std::pair<Point, uint64_t>>& q, double epsilon,
    bool self_join = false, Metric metric = Metric::kL2);

}  // namespace kcpq

#endif  // KCPQ_CPQ_DISTANCE_JOIN_H_
