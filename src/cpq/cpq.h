// K Closest Pair Queries over two R*-trees — the paper's contribution.
//
// Given point sets P and Q stored in R*-trees, find the K pairs
// (p, q) in P x Q with the K smallest Euclidean distances (Section 2.1).
// Five algorithms are provided (Section 3):
//
//   kNaive            exhaustive recursion, no pruning (baseline only)
//   kExhaustive       prune node pairs with MINMINDIST > T
//   kSimple           + tighten T from MINMAXDIST (K=1) / MAXMAXDIST (K>1)
//   kSortedDistances  + visit child pairs in ascending MINMINDIST order
//   kHeap             iterative: global min-heap of node pairs by MINMINDIST
//
// T is the pruning bound: an upper bound on the final K-th closest distance,
// maintained from (a) the K-th best pair found so far and (b) Inequality-2
// style guarantees. For K = 1 the MINMAXDIST of any node pair bounds the
// closest distance (the paper's 1-CPQ special case); for K > 1 that is
// unsound, and the implemented alternative (Section 3.8, detailed in the
// companion TR) accumulates MAXMAXDIST-sorted node pairs until the
// guaranteed number of point pairs beneath them reaches K.
//
// Usage:
//
//   CpqOptions options;
//   options.algorithm = CpqAlgorithm::kHeap;
//   options.k = 10;
//   CpqStats stats;
//   KCPQ_ASSIGN_OR_RETURN(std::vector<PairResult> pairs,
//                         KClosestPairs(tree_p, tree_q, options, &stats));
//
// Results come back in ascending distance. Distance ties make the result
// set non-unique; like the paper, any valid instance may be returned.

#ifndef KCPQ_CPQ_CPQ_H_
#define KCPQ_CPQ_CPQ_H_

#include <cstdint>
#include <vector>

#include "common/query_context.h"
#include "common/query_control.h"
#include "common/status.h"
#include "cpq/objective.h"
#include "geometry/minkowski.h"
#include "geometry/point.h"
#include "rtree/rtree.h"

namespace kcpq {

enum class CpqAlgorithm {
  kNaive,
  kExhaustive,
  kSimple,
  kSortedDistances,
  kHeap,
};

const char* CpqAlgorithmName(CpqAlgorithm a);

/// How two leaf nodes' entries are combined once the traversal bottoms out.
enum class LeafKernel {
  /// The paper's implicit choice: test all |P_leaf| x |Q_leaf| pairs.
  kNestedLoop,
  /// Sort both leaves along the best-spread axis and sweep: a pair whose
  /// separation on the sweep axis alone already exceeds the pruning bound
  /// is skipped without computing its distance, and — the sweep's payoff —
  /// so is every pair after it in sweep order. Same results (the skipped
  /// pairs are exactly ones the nested loop would reject), typically a
  /// large reduction in point-distance computations.
  kPlaneSweep,
};

const char* LeafKernelName(LeafKernel k);

/// How node pairs at different tree levels are handled (Section 3.7).
enum class HeightStrategy {
  /// Classic spatial-join style: descend both trees until the shorter one
  /// reaches its leaves, then keep the leaf fixed.
  kFixAtLeaves,
  /// The paper's proposal: keep the shorter tree's node fixed at the top
  /// until the taller tree descends to the same level.
  kFixAtRoot,
};

/// Tie-breaking criteria among node pairs with equal MINMINDIST
/// (Section 3.6, T1-T5). A chain is evaluated left to right; the first
/// criterion that separates two pairs decides.
enum class TieCriterion {
  /// T1: prefer the pair one of whose MBRs has the largest area relative
  /// to its tree's root MBR area.
  kLargestNormalizedArea,
  /// T2: prefer the smallest MINMAXDIST between the two MBRs.
  kSmallestMinMaxDist,
  /// T3: prefer the largest sum of the two MBR areas.
  kLargestAreaSum,
  /// T4: prefer the smallest dead space: area of the MBR enclosing both
  /// minus the two areas.
  kSmallestEnclosureWaste,
  /// T5: prefer the largest intersection area of the two MBRs.
  kLargestIntersection,
};

struct CpqOptions {
  CpqAlgorithm algorithm = CpqAlgorithm::kSortedDistances;

  /// Number of closest pairs to report. Capped by |P| * |Q| naturally.
  size_t k = 1;

  /// Query family (cpq/objective.h). kClosest is the paper's problem and
  /// the default; kFarthest reports the K pairs in *descending* distance;
  /// kRangeClosest restricts eligibility to pairs whose points both lie in
  /// `query_rect`. All five algorithms, both schedulers, prefetch, and the
  /// anytime certificates work for every family.
  QueryFamily family = QueryFamily::kClosest;

  /// The kRangeClosest query rectangle; ignored by the other families.
  Rect query_rect{};

  HeightStrategy height_strategy = HeightStrategy::kFixAtRoot;

  /// Distance metric. The paper uses Euclidean distance and notes the
  /// methods adapt to any Minkowski metric (Section 2.1); L1 and Linf are
  /// supported end-to-end (see geometry/minkowski.h).
  Metric metric = Metric::kL2;

  /// Applied by kSortedDistances and kHeap; empty = break ties by page ids
  /// only. Default T1, the paper's winner (Section 4.1).
  std::vector<TieCriterion> tie_chain = {TieCriterion::kLargestNormalizedArea};

  /// Enables the MAXMAXDIST guaranteed-count bound for K > 1 (Section 3.8)
  /// in kSimple / kSortedDistances / kHeap. When false those algorithms
  /// fall back to the K-heap-top bound only (the paper's "simple
  /// modification"); ablation knob.
  bool use_maxmaxdist_pruning = true;

  /// Self-join mode: both tree arguments are the same tree, reflexive
  /// pairs (same record id) are skipped and each unordered pair is
  /// reported once (p_id < q_id). Set by SelfKClosestPairs.
  bool self_join = false;

  /// Leaf node-pair combination strategy; ablation knob. The plane sweep
  /// returns the same distance multiset as the nested loop for every
  /// algorithm and metric (tests/parallel_test.cc locks this in).
  LeafKernel leaf_kernel = LeafKernel::kPlaneSweep;

  /// Speculative prefetch window W: at each expansion the engine issues
  /// asynchronous reads for the pages of the W best not-yet-read node
  /// pairs of its frontier (the kHeap priority queue; the sorted child
  /// list for the recursive algorithms). 0 disables speculation — the
  /// default, and results, disk-access counts, and traversal order are
  /// bit-identical for every W (prefetched pages are staged outside the
  /// buffer's frame table; docs/io.md). Speculation only changes
  /// wall-clock, and is charged to the query's ResourceAccountant.
  size_t prefetch_window = 0;

  /// Lifecycle limits (deadline / budgets / cancellation). Default is
  /// unlimited. When a limit trips mid-query the engine returns OK with a
  /// *partial* result and describes it in CpqStats::quality; it never
  /// converts expiry into an error.
  QueryControl control;

  /// Optional externally-owned QueryContext. When set it supersedes
  /// `control` (its own control is used) and the engine charges all buffer
  /// pages it touches to the context's ResourceAccountant, making
  /// `max_candidate_bytes` govern the query's *unified* footprint (engine
  /// candidate state + distinct buffer pages). When null the engine runs a
  /// private context built from `control`. Must outlive the call; a
  /// context serves exactly one query at a time.
  QueryContext* context = nullptr;
};

/// One reported closest pair.
struct PairResult {
  Point p;
  Point q;
  uint64_t p_id = 0;
  uint64_t q_id = 0;
  /// True distance under the query's metric (Euclidean by default).
  double distance = 0.0;
};

/// Work counters for one query. Disk accesses are counted by the trees'
/// buffer managers; this struct records the per-query deltas.
struct CpqStats {
  uint64_t node_pairs_processed = 0;
  uint64_t candidate_pairs_generated = 0;
  uint64_t candidate_pairs_pruned = 0;
  uint64_t point_distance_computations = 0;
  /// Leaf point pairs skipped by the plane-sweep kernel's axis test
  /// (0 under kNestedLoop). Skipped + computed = enumerated pairs.
  uint64_t leaf_pairs_skipped = 0;
  /// High-water mark of the kHeap algorithm's pair heap (0 otherwise).
  uint64_t max_heap_size = 0;
  /// Buffer misses (= physical reads) per tree during the query.
  uint64_t disk_accesses_p = 0;
  uint64_t disk_accesses_q = 0;
  /// Logical R-tree node reads (2 per processed node pair); the quantity
  /// QueryControl::max_node_accesses limits. Unlike disk accesses it is
  /// independent of buffer state, so budget stops are deterministic.
  uint64_t node_accesses = 0;
  /// Speculative reads issued / claimed by this query's thread (both trees
  /// combined; zero with prefetch_window = 0). Wasted speculation is a
  /// buffer-level quantity — completions land on I/O threads — and is
  /// reported by BufferManager::stats() as issued - hits after a drain.
  uint64_t prefetch_issued = 0;
  uint64_t prefetch_hits = 0;
  /// Resumable-scheduler execution only (zero under the blocking path):
  /// how many times the query parked on a non-resident page and the total
  /// wall time it spent parked. Parked time is scheduler wait, not work —
  /// a multiplexed worker runs other queries during it.
  uint64_t io_parks = 0;
  uint64_t io_parked_ns = 0;

  /// Result quality certificate: trivial (exact) for completed queries,
  /// the anytime bound for partial ones. See QueryQuality.
  QueryQuality quality;

  uint64_t disk_accesses() const { return disk_accesses_p + disk_accesses_q; }
};

/// Finds the `options.k` closest pairs between `tree_p` and `tree_q`.
/// Returns fewer than k pairs when |P| * |Q| < k. `stats` may be null.
Result<std::vector<PairResult>> KClosestPairs(const RStarTree& tree_p,
                                              const RStarTree& tree_q,
                                              const CpqOptions& options = {},
                                              CpqStats* stats = nullptr);

/// Self-CPQ (Section 6, future work): the K closest pairs of distinct
/// points within one data set; each unordered pair reported once.
Result<std::vector<PairResult>> SelfKClosestPairs(const RStarTree& tree,
                                                  CpqOptions options = {},
                                                  CpqStats* stats = nullptr);

/// Semi-CPQ (Section 6, future work): for every point of P, its nearest
/// point in Q; results in ascending distance. |result| == |P| when the
/// query completes. Under `control` limits the scan stops early with the
/// nearest-neighbor lists of the P-leaves finished so far (quality reports
/// a zero lower bound: per-point NN results certify nothing about the
/// unvisited points).
Result<std::vector<PairResult>> SemiClosestPairs(
    const RStarTree& tree_p, const RStarTree& tree_q,
    CpqStats* stats = nullptr, const QueryControl& control = {},
    QueryContext* context = nullptr);

}  // namespace kcpq

#endif  // KCPQ_CPQ_CPQ_H_
