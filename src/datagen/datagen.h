// Workload generators for the paper's experiments (Section 4).
//
// The paper uses (i) uniform random point sets of 20K-80K points, (ii) the
// real Sequoia 2000 data set: 62,536 points representing sites in
// California, and (iii) a uniform set of the same cardinality. The Sequoia
// data is not redistributable here, so `GenerateSequoiaLike` synthesizes a
// deterministic substitute with the property the paper's analysis actually
// depends on — strong clustering, which keeps R-tree node rectangles
// disjoint even when the data *workspaces* fully overlap (the mechanism
// behind the 2-20x gap discussed in Section 4.3.2). See DESIGN.md §5.
//
// Workspace overlap (the paper's key experimental parameter) is realized by
// generating the second data set into a workspace shifted along x so that
// exactly `overlap_fraction` of the two unit workspaces coincide.

#ifndef KCPQ_DATAGEN_DATAGEN_H_
#define KCPQ_DATAGEN_DATAGEN_H_

#include <cstdint>
#include <vector>

#include "geometry/point.h"
#include "geometry/rect.h"

namespace kcpq {

/// The canonical unit workspace [0,1] x [0,1].
Rect UnitWorkspace();

/// A copy of `workspace` shifted along x so the two share exactly
/// `overlap_fraction` (in [0,1]) of their width. 1.0 returns `workspace`
/// itself; 0.0 an adjacent, disjoint workspace.
Rect ShiftedWorkspace(const Rect& workspace, double overlap_fraction);

/// `n` points uniformly distributed over `workspace`. Deterministic in
/// `seed`.
std::vector<Point> GenerateUniform(size_t n, const Rect& workspace,
                                   uint64_t seed);

/// `n` points from a clustered, Sequoia-like distribution over `workspace`:
/// a mixture of dense Gaussian clusters of varying spread (cities) whose
/// centers lie along two diagonal bands (coast / central valley), plus ~10%
/// uniform background noise (isolated sites). Points are rejected-and-
/// resampled into the workspace, so all fall inside it. Deterministic in
/// `seed`.
std::vector<Point> GenerateSequoiaLike(size_t n, const Rect& workspace,
                                       uint64_t seed);

/// Cardinality of the paper's real data set; the default for experiments
/// that use "R".
inline constexpr size_t kSequoiaCardinality = 62536;

}  // namespace kcpq

#endif  // KCPQ_DATAGEN_DATAGEN_H_
