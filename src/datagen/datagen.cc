#include "datagen/datagen.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"

namespace kcpq {

Rect UnitWorkspace() {
  Rect r;
  for (int d = 0; d < kDims; ++d) {
    r.lo[d] = 0.0;
    r.hi[d] = 1.0;
  }
  return r;
}

Rect ShiftedWorkspace(const Rect& workspace, double overlap_fraction) {
  const double f = std::clamp(overlap_fraction, 0.0, 1.0);
  Rect shifted = workspace;
  const double width = workspace.hi[0] - workspace.lo[0];
  const double shift = (1.0 - f) * width;
  shifted.lo[0] += shift;
  shifted.hi[0] += shift;
  return shifted;
}

std::vector<Point> GenerateUniform(size_t n, const Rect& workspace,
                                   uint64_t seed) {
  Xoshiro256pp rng(seed);
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Point p;
    for (int d = 0; d < kDims; ++d) {
      p.coord[d] = rng.NextDouble(workspace.lo[d], workspace.hi[d]);
    }
    out.push_back(p);
  }
  return out;
}

std::vector<Point> GenerateSequoiaLike(size_t n, const Rect& workspace,
                                       uint64_t seed) {
  // Cluster centers sit on two bands running diagonally through the
  // workspace (in unit coordinates, then scaled): a dense "coastal" band
  // and a sparser "inland" band, mimicking California's site distribution.
  constexpr int kClusters = 36;
  constexpr double kNoiseFraction = 0.10;

  Xoshiro256pp rng(seed);
  const double width = workspace.hi[0] - workspace.lo[0];
  const double height = workspace.hi[1] - workspace.lo[1];

  struct Cluster {
    Point center;
    double sigma;
    double weight;
  };
  std::vector<Cluster> clusters;
  clusters.reserve(kClusters);
  double total_weight = 0.0;
  for (int i = 0; i < kClusters; ++i) {
    const bool coastal = i % 3 != 0;  // 2/3 of clusters on the dense band
    // Band parameterization: t in [0,1] along the diagonal; the coastal
    // band hugs x ~ t, the inland band is offset right.
    const double t = rng.NextDouble();
    const double offset = coastal ? 0.0 : 0.18;
    const double wiggle = 0.05 * rng.NextGaussian();
    Cluster c;
    c.center.coord[0] =
        workspace.lo[0] +
        std::clamp(0.15 + 0.6 * t + offset + wiggle, 0.0, 1.0) * width;
    c.center.coord[1] =
        workspace.lo[1] + std::clamp(0.05 + 0.9 * t + 0.05 * rng.NextGaussian(),
                                     0.0, 1.0) *
                              height;
    // City sizes follow a heavy-ish tail: a few big metros, many towns.
    c.sigma = (0.004 + 0.03 * std::pow(rng.NextDouble(), 2.5)) * width;
    c.weight = std::pow(rng.NextDouble(), 1.5) + 0.05;
    total_weight += c.weight;
    clusters.push_back(c);
  }

  std::vector<Point> out;
  out.reserve(n);
  while (out.size() < n) {
    Point p;
    if (rng.NextDouble() < kNoiseFraction) {
      for (int d = 0; d < kDims; ++d) {
        p.coord[d] = rng.NextDouble(workspace.lo[d], workspace.hi[d]);
      }
      out.push_back(p);
      continue;
    }
    // Pick a cluster by weight, then sample a Gaussian offset; reject
    // points outside the workspace (resample keeps counts exact).
    double pick = rng.NextDouble() * total_weight;
    const Cluster* chosen = &clusters.back();
    for (const Cluster& c : clusters) {
      pick -= c.weight;
      if (pick <= 0.0) {
        chosen = &c;
        break;
      }
    }
    p.coord[0] = chosen->center.coord[0] + chosen->sigma * rng.NextGaussian();
    p.coord[1] = chosen->center.coord[1] + chosen->sigma * rng.NextGaussian();
    if (!workspace.Contains(p)) continue;
    out.push_back(p);
  }
  return out;
}

}  // namespace kcpq
