#include "rtree/split.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "geometry/metrics.h"

namespace kcpq {

namespace {

// MBR of entries[begin, end).
Rect MbrOf(const std::vector<Entry>& entries, size_t begin, size_t end) {
  Rect mbr = Rect::Empty();
  for (size_t i = begin; i < end; ++i) mbr.Expand(entries[i].rect);
  return mbr;
}

// Sum over the other entries of how much the candidate's grown rect
// overlaps them, minus the current overlap (R* "overlap enlargement").
double OverlapEnlargement(const Node& node, size_t candidate,
                          const Rect& grown) {
  const Rect& current = node.entries[candidate].rect;
  double delta = 0.0;
  for (size_t i = 0; i < node.entries.size(); ++i) {
    if (i == candidate) continue;
    const Rect& other = node.entries[i].rect;
    delta += IntersectionArea(grown, other) -
             IntersectionArea(current, other);
  }
  return delta;
}

}  // namespace

size_t ChooseSubtree(const Node& node, const Rect& rect) {
  assert(!node.IsLeaf() && !node.entries.empty());
  size_t best = 0;
  if (node.level == 1) {
    // Children are leaves: minimize overlap enlargement.
    double best_overlap = std::numeric_limits<double>::infinity();
    double best_enlarge = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < node.entries.size(); ++i) {
      const Rect grown = Union(node.entries[i].rect, rect);
      const double overlap = OverlapEnlargement(node, i, grown);
      const double enlarge = grown.Area() - node.entries[i].rect.Area();
      const double area = node.entries[i].rect.Area();
      if (overlap < best_overlap ||
          (overlap == best_overlap &&
           (enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)))) {
        best = i;
        best_overlap = overlap;
        best_enlarge = enlarge;
        best_area = area;
      }
    }
    return best;
  }
  // Children are internal: minimize area enlargement, ties by area.
  double best_enlarge = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node.entries.size(); ++i) {
    const double enlarge = Enlargement(node.entries[i].rect, rect);
    const double area = node.entries[i].rect.Area();
    if (enlarge < best_enlarge ||
        (enlarge == best_enlarge && area < best_area)) {
      best = i;
      best_enlarge = enlarge;
      best_area = area;
    }
  }
  return best;
}

void SplitEntries(std::vector<Entry> entries, size_t min_entries,
                  std::vector<Entry>* left, std::vector<Entry>* right) {
  const size_t total = entries.size();
  assert(total >= 2 * min_entries);
  const size_t distributions = total - 2 * min_entries + 1;

  // Phase 1: choose the split axis by minimal margin sum. For each axis we
  // evaluate both sorts (by lo, by hi) over all legal distributions.
  int best_axis = 0;
  bool best_axis_by_hi = false;
  double best_margin_sum = std::numeric_limits<double>::infinity();
  for (int axis = 0; axis < kDims; ++axis) {
    for (const bool by_hi : {false, true}) {
      std::sort(entries.begin(), entries.end(),
                [axis, by_hi](const Entry& a, const Entry& b) {
                  const double ka = by_hi ? a.rect.hi[axis] : a.rect.lo[axis];
                  const double kb = by_hi ? b.rect.hi[axis] : b.rect.lo[axis];
                  if (ka != kb) return ka < kb;
                  // Secondary key keeps the sort deterministic.
                  return (by_hi ? a.rect.lo[axis] : a.rect.hi[axis]) <
                         (by_hi ? b.rect.lo[axis] : b.rect.hi[axis]);
                });
      double margin_sum = 0.0;
      for (size_t k = 0; k < distributions; ++k) {
        const size_t split_at = min_entries + k;
        margin_sum += MbrOf(entries, 0, split_at).Margin() +
                      MbrOf(entries, split_at, total).Margin();
      }
      if (margin_sum < best_margin_sum) {
        best_margin_sum = margin_sum;
        best_axis = axis;
        best_axis_by_hi = by_hi;
      }
    }
  }

  // Phase 2: on the chosen axis+sort, pick the distribution with minimal
  // overlap area, ties by minimal total area.
  {
    const int axis = best_axis;
    const bool by_hi = best_axis_by_hi;
    std::sort(entries.begin(), entries.end(),
              [axis, by_hi](const Entry& a, const Entry& b) {
                const double ka = by_hi ? a.rect.hi[axis] : a.rect.lo[axis];
                const double kb = by_hi ? b.rect.hi[axis] : b.rect.lo[axis];
                if (ka != kb) return ka < kb;
                return (by_hi ? a.rect.lo[axis] : a.rect.hi[axis]) <
                       (by_hi ? b.rect.lo[axis] : b.rect.hi[axis]);
              });
  }
  size_t best_split = min_entries;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t k = 0; k < distributions; ++k) {
    const size_t split_at = min_entries + k;
    const Rect g1 = MbrOf(entries, 0, split_at);
    const Rect g2 = MbrOf(entries, split_at, total);
    const double overlap = IntersectionArea(g1, g2);
    const double area = g1.Area() + g2.Area();
    if (overlap < best_overlap ||
        (overlap == best_overlap && area < best_area)) {
      best_overlap = overlap;
      best_area = area;
      best_split = split_at;
    }
  }

  left->assign(entries.begin(), entries.begin() + best_split);
  right->assign(entries.begin() + best_split, entries.end());
}

void TakeFarthestEntries(Node* node, size_t count,
                         std::vector<Entry>* removed) {
  assert(count < node->entries.size());
  const Point center = node->ComputeMbr().Center();
  // Sort ascending by center distance; tail = farthest `count` entries.
  std::sort(node->entries.begin(), node->entries.end(),
            [&center](const Entry& a, const Entry& b) {
              return SquaredDistance(a.rect.Center(), center) <
                     SquaredDistance(b.rect.Center(), center);
            });
  const size_t keep = node->entries.size() - count;
  // "Close reinsert": reinsertion starts with the entry nearest the center,
  // i.e. the tail in ascending order as-is.
  removed->assign(node->entries.begin() + keep, node->entries.end());
  node->entries.resize(keep);
}

}  // namespace kcpq
