// Sort-Tile-Recursive bulk loading (Leutenegger, Lopez, Edgington 1997).
//
// Packs leaves from an x-sorted, y-tiled ordering, then builds each upper
// level by tiling the level below's MBR centers the same way. Produces a
// valid R*-tree (the insertion path and queries don't care how nodes came
// to be); node shapes differ from insertion-built trees — bench_ablation
// quantifies the effect on closest-pair query cost.

#include <algorithm>
#include <cmath>

#include "rtree/rtree.h"

namespace kcpq {

namespace {

// Tiles `entries` into groups of ~`per_node` (each at least `min_entries`
// unless there is only one group), sorted by x-center slabs then y-center
// within each slab. Writes one node per group at `level` and returns the
// parent entries for the next level up.
Status PackLevel(BufferManager* buffer, std::vector<Entry> entries,
                 size_t per_node, size_t min_entries, int level,
                 std::vector<Entry>* parents) {
  const size_t n = entries.size();
  const size_t node_count = (n + per_node - 1) / per_node;
  const size_t slab_count = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(node_count))));
  const size_t slab_size = slab_count * per_node;

  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.rect.Center().x() < b.rect.Center().x();
  });
  for (size_t begin = 0; begin < n; begin += slab_size) {
    const size_t end = std::min(n, begin + slab_size);
    std::sort(entries.begin() + begin, entries.begin() + end,
              [](const Entry& a, const Entry& b) {
                return a.rect.Center().y() < b.rect.Center().y();
              });
  }

  // Group boundaries: full nodes of `per_node`, but if the final fragment
  // would be underfull, shift entries from its predecessor to keep every
  // non-root node at (or above) the minimum occupancy.
  std::vector<size_t> bounds;  // exclusive end of each group
  for (size_t end = per_node; end < n; end += per_node) bounds.push_back(end);
  bounds.push_back(n);
  if (bounds.size() >= 2) {
    const size_t last = bounds.size() - 1;
    const size_t tail = bounds[last] - bounds[last - 1];
    if (tail < min_entries) {
      bounds[last - 1] -= min_entries - tail;  // predecessor stays >= m
    }
  }

  parents->clear();
  size_t begin = 0;
  for (const size_t end : bounds) {
    Node node;
    node.level = level;
    node.entries.assign(entries.begin() + begin, entries.begin() + end);
    KCPQ_ASSIGN_OR_RETURN(const PageId page, buffer->Allocate());
    Page raw(buffer->storage()->page_size());
    KCPQ_RETURN_IF_ERROR(SerializeNode(node, &raw));
    KCPQ_RETURN_IF_ERROR(buffer->Write(page, raw));
    parents->push_back(Entry{node.ComputeMbr(), page});
    begin = end;
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<RStarTree>> RStarTree::BulkLoad(
    BufferManager* buffer, std::vector<std::pair<Point, uint64_t>> items,
    const RTreeOptions& options, double fill_factor) {
  if (fill_factor <= 0.0 || fill_factor > 1.0) {
    return Status::InvalidArgument("fill_factor must be in (0, 1]");
  }
  KCPQ_ASSIGN_OR_RETURN(auto tree, Create(buffer, options));
  if (items.empty()) return tree;

  // Packed fill must leave room for two groups of m on a split-free level
  // and never drop below m itself.
  const size_t per_node = std::max(
      2 * tree->min_entries_,
      static_cast<size_t>(static_cast<double>(tree->max_entries_) *
                          fill_factor));

  std::vector<Entry> level_entries;
  level_entries.reserve(items.size());
  for (const auto& [point, record_id] : items) {
    level_entries.push_back(Entry::ForPoint(point, record_id));
  }
  tree->size_ = items.size();

  int level = 0;
  // The empty root page Create() made is replaced below; drop it.
  KCPQ_RETURN_IF_ERROR(buffer->Free(tree->root_page_));
  while (true) {
    std::vector<Entry> parents;
    KCPQ_RETURN_IF_ERROR(PackLevel(buffer, std::move(level_entries), per_node,
                                   tree->min_entries_, level, &parents));
    if (parents.size() == 1) {
      tree->root_page_ = parents[0].id;
      tree->height_ = level + 1;
      break;
    }
    level_entries = std::move(parents);
    ++level;
  }
  KCPQ_RETURN_IF_ERROR(tree->WriteMeta());
  return tree;
}

}  // namespace kcpq
