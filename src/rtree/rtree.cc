#include "rtree/rtree.h"

#include <algorithm>
#include <cstring>
#include <string>

#include "rtree/split.h"

namespace kcpq {

namespace {

constexpr uint64_t kMetaMagic = 0x6b637071'72747265ULL;  // "kcpqrtre"

// Serialized metadata, stored at the front of the meta page.
struct MetaBlock {
  uint64_t magic;
  uint64_t root_page;
  int64_t height;
  uint64_t size;
  uint64_t max_entries;
  uint64_t min_entries;
  uint64_t flags;  // bit 0: tree holds extended (non-point) objects
};

constexpr uint64_t kFlagExtendedObjects = 1;

}  // namespace

RStarTree::RStarTree(BufferManager* buffer, const RTreeOptions& options)
    : buffer_(buffer),
      max_entries_(NodeCapacity(buffer->storage()->page_size())),
      min_entries_(std::max<size_t>(
          1, static_cast<size_t>(static_cast<double>(max_entries_) *
                                 options.min_fill_fraction))),
      reinsert_count_(std::max<size_t>(
          1, static_cast<size_t>(static_cast<double>(max_entries_) *
                                 options.reinsert_fraction))),
      forced_reinsert_(options.forced_reinsert) {}

Result<std::unique_ptr<RStarTree>> RStarTree::Create(
    BufferManager* buffer, const RTreeOptions& options) {
  if (options.min_fill_fraction <= 0.0 || options.min_fill_fraction > 0.5) {
    return Status::InvalidArgument("min_fill_fraction must be in (0, 0.5]");
  }
  auto tree = std::unique_ptr<RStarTree>(new RStarTree(buffer, options));
  if (tree->max_entries_ < 4) {
    return Status::InvalidArgument("page too small for an R-tree node");
  }
  KCPQ_ASSIGN_OR_RETURN(tree->meta_page_, buffer->Allocate());
  KCPQ_ASSIGN_OR_RETURN(tree->root_page_, buffer->Allocate());
  tree->height_ = 1;
  tree->size_ = 0;
  Node root;
  root.level = 0;
  KCPQ_RETURN_IF_ERROR(tree->WriteNode(tree->root_page_, root));
  KCPQ_RETURN_IF_ERROR(tree->WriteMeta());
  return tree;
}

Result<std::unique_ptr<RStarTree>> RStarTree::Open(
    BufferManager* buffer, PageId meta_page, const RTreeOptions& options) {
  auto tree = std::unique_ptr<RStarTree>(new RStarTree(buffer, options));
  tree->meta_page_ = meta_page;
  KCPQ_RETURN_IF_ERROR(tree->ReadMeta());
  return tree;
}

Status RStarTree::WriteMeta() {
  Page page(buffer_->storage()->page_size());
  MetaBlock meta{kMetaMagic,   root_page_,   height_,
                 size_,        max_entries_, min_entries_,
                 has_extended_ ? kFlagExtendedObjects : 0};
  std::memcpy(page.data(), &meta, sizeof(meta));
  return buffer_->Write(meta_page_, page);
}

Status RStarTree::ReadMeta() {
  Page page;
  KCPQ_RETURN_IF_ERROR(buffer_->Read(meta_page_, &page));
  MetaBlock meta;
  if (page.size() < sizeof(meta)) return Status::Corruption("short meta page");
  std::memcpy(&meta, page.data(), sizeof(meta));
  if (meta.magic != kMetaMagic) {
    return Status::Corruption("bad R-tree meta magic");
  }
  if (meta.max_entries != max_entries_) {
    return Status::Corruption("page size mismatch with stored tree");
  }
  root_page_ = meta.root_page;
  height_ = static_cast<int>(meta.height);
  size_ = meta.size;
  min_entries_ = meta.min_entries;
  has_extended_ = (meta.flags & kFlagExtendedObjects) != 0;
  return Status::OK();
}

Status RStarTree::ReadNode(PageId page, Node* node, QueryContext* ctx) const {
  Page raw;
  KCPQ_RETURN_IF_ERROR(buffer_->Read(page, &raw, ctx));
  return DeserializeNode(raw, node);
}

Status RStarTree::TryReadNode(PageId page, Node* node, QueryContext* ctx,
                              const Waker& waker,
                              BufferManager::TryReadOutcome* outcome) const {
  Page raw;
  KCPQ_RETURN_IF_ERROR(buffer_->TryRead(page, &raw, ctx, waker, outcome));
  if (outcome->parked) return Status::OK();
  return DeserializeNode(raw, node);
}

Status RStarTree::WriteNode(PageId page, const Node& node) {
  Page raw(buffer_->storage()->page_size());
  KCPQ_RETURN_IF_ERROR(SerializeNode(node, &raw));
  return buffer_->Write(page, raw);
}

Status RStarTree::RootMbr(Rect* mbr, QueryContext* ctx) const {
  Node root;
  KCPQ_RETURN_IF_ERROR(ReadNode(root_page_, &root, ctx));
  *mbr = root.ComputeMbr();
  return Status::OK();
}

Status RStarTree::Flush() {
  KCPQ_RETURN_IF_ERROR(WriteMeta());
  KCPQ_RETURN_IF_ERROR(buffer_->Flush());
  return buffer_->storage()->Sync();
}

Status RStarTree::Insert(const Point& p, uint64_t record_id) {
  KCPQ_RETURN_IF_ERROR(InsertAtLevel(Entry::ForPoint(p, record_id), 0));
  ++size_;
  return Status::OK();
}

Status RStarTree::InsertRect(const Rect& rect, uint64_t record_id) {
  if (!rect.IsValid()) {
    return Status::InvalidArgument("rect with lo > hi");
  }
  KCPQ_RETURN_IF_ERROR(InsertAtLevel(Entry{rect, record_id}, 0));
  ++size_;
  for (int d = 0; d < kDims; ++d) {
    if (rect.lo[d] != rect.hi[d]) {
      has_extended_ = true;
      break;
    }
  }
  return Status::OK();
}

Status RStarTree::InsertAtLevel(const Entry& entry, int level) {
  // One insertion may trigger forced reinsertions (at most one per level,
  // tracked by the bitmask), each of which re-enters the tree from the top.
  std::vector<std::pair<Entry, int>> pending;
  pending.emplace_back(entry, level);
  uint32_t reinserted_levels = 0;
  while (!pending.empty()) {
    auto [e, lvl] = pending.back();
    pending.pop_back();
    Rect mbr;
    std::vector<Entry> split;
    KCPQ_RETURN_IF_ERROR(InsertRecursive(root_page_, /*is_root=*/true, e, lvl,
                                         &reinserted_levels, &pending, &mbr,
                                         &split));
    if (!split.empty()) {
      // Root split: grow the tree by one level.
      Node old_root;
      KCPQ_RETURN_IF_ERROR(ReadNode(root_page_, &old_root));
      Node new_root;
      new_root.level = old_root.level + 1;
      new_root.entries.push_back(Entry{mbr, root_page_});
      for (const Entry& s : split) new_root.entries.push_back(s);
      KCPQ_ASSIGN_OR_RETURN(const PageId new_root_page, buffer_->Allocate());
      KCPQ_RETURN_IF_ERROR(WriteNode(new_root_page, new_root));
      root_page_ = new_root_page;
      ++height_;
    }
  }
  return Status::OK();
}

Status RStarTree::InsertRecursive(
    PageId page, bool is_root, const Entry& entry, int target_level,
    uint32_t* reinserted_levels, std::vector<std::pair<Entry, int>>* pending,
    Rect* mbr, std::vector<Entry>* split) {
  Node node;
  KCPQ_RETURN_IF_ERROR(ReadNode(page, &node));
  if (node.level < target_level) {
    return Status::Internal("insertion descended past its target level");
  }
  if (node.level == target_level) {
    node.entries.push_back(entry);
  } else {
    const size_t child_idx = ChooseSubtree(node, entry.rect);
    const PageId child_page = node.entries[child_idx].id;
    Rect child_mbr;
    std::vector<Entry> child_split;
    KCPQ_RETURN_IF_ERROR(InsertRecursive(child_page, /*is_root=*/false, entry,
                                         target_level, reinserted_levels,
                                         pending, &child_mbr, &child_split));
    node.entries[child_idx].rect = child_mbr;
    for (const Entry& s : child_split) node.entries.push_back(s);
  }

  if (node.entries.size() > max_entries_) {
    KCPQ_RETURN_IF_ERROR(OverflowTreatment(page, is_root, &node,
                                           reinserted_levels, pending, split));
  } else {
    KCPQ_RETURN_IF_ERROR(WriteNode(page, node));
  }
  *mbr = node.ComputeMbr();
  return Status::OK();
}

Status RStarTree::OverflowTreatment(
    PageId page, bool is_root, Node* node, uint32_t* reinserted_levels,
    std::vector<std::pair<Entry, int>>* pending, std::vector<Entry>* split) {
  // Levels beyond the mask width (impossible below ~2^32 nodes) simply
  // forgo forced reinsertion rather than shifting out of range.
  const uint32_t level_bit = node->level < 32 ? 1u << node->level : 0;
  if (!is_root && forced_reinsert_ && level_bit != 0 &&
      !(*reinserted_levels & level_bit)) {
    *reinserted_levels |= level_bit;
    std::vector<Entry> removed;
    TakeFarthestEntries(node, reinsert_count_, &removed);
    KCPQ_RETURN_IF_ERROR(WriteNode(page, *node));
    // Close-reinsert order: nearest-to-center first. Entries re-enter from
    // the top at this node's level once the current descent unwinds.
    // `pending` is drained LIFO, so push in reverse.
    for (auto it = removed.rbegin(); it != removed.rend(); ++it) {
      pending->emplace_back(*it, node->level);
    }
    return Status::OK();
  }
  // R* split; current page keeps the left group.
  std::vector<Entry> left, right;
  SplitEntries(std::move(node->entries), min_entries_, &left, &right);
  node->entries = std::move(left);
  KCPQ_RETURN_IF_ERROR(WriteNode(page, *node));
  Node sibling;
  sibling.level = node->level;
  sibling.entries = std::move(right);
  KCPQ_ASSIGN_OR_RETURN(const PageId sibling_page, buffer_->Allocate());
  KCPQ_RETURN_IF_ERROR(WriteNode(sibling_page, sibling));
  split->push_back(Entry{sibling.ComputeMbr(), sibling_page});
  return Status::OK();
}

Result<bool> RStarTree::Erase(const Point& p, uint64_t record_id) {
  return EraseRect(Rect::FromPoint(p), record_id);
}

Result<bool> RStarTree::EraseRect(const Rect& rect, uint64_t record_id) {
  std::vector<std::pair<Entry, int>> orphans;
  EraseOutcome outcome;
  KCPQ_RETURN_IF_ERROR(EraseRecursive(root_page_, /*is_root=*/true, rect,
                                      record_id, &orphans, &outcome));
  if (!outcome.found) return false;
  --size_;
  // Reinsert entries of dissolved nodes, deepest-level entries first so
  // subtree heights stay consistent with their target levels.
  std::sort(orphans.begin(), orphans.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  for (const auto& [entry, level] : orphans) {
    KCPQ_RETURN_IF_ERROR(InsertAtLevel(entry, level));
  }
  // Shrink the root while it is internal with a single child.
  while (height_ > 1) {
    Node root;
    KCPQ_RETURN_IF_ERROR(ReadNode(root_page_, &root));
    if (root.IsLeaf() || root.entries.size() != 1) break;
    const PageId child = root.entries[0].id;
    KCPQ_RETURN_IF_ERROR(buffer_->Free(root_page_));
    root_page_ = child;
    --height_;
  }
  return true;
}

Status RStarTree::EraseRecursive(PageId page, bool is_root,
                                 const Rect& target, uint64_t record_id,
                                 std::vector<std::pair<Entry, int>>* orphans,
                                 EraseOutcome* outcome) {
  Node node;
  KCPQ_RETURN_IF_ERROR(ReadNode(page, &node));
  outcome->found = false;
  outcome->eliminate = false;

  if (node.IsLeaf()) {
    for (size_t i = 0; i < node.entries.size(); ++i) {
      if (node.entries[i].id == record_id && node.entries[i].rect == target) {
        node.entries.erase(node.entries.begin() + i);
        outcome->found = true;
        break;
      }
    }
    if (!outcome->found) return Status::OK();
  } else {
    for (size_t i = 0; i < node.entries.size() && !outcome->found; ++i) {
      if (!node.entries[i].rect.Contains(target)) continue;
      EraseOutcome child;
      KCPQ_RETURN_IF_ERROR(EraseRecursive(node.entries[i].id,
                                          /*is_root=*/false, target,
                                          record_id, orphans, &child));
      if (!child.found) continue;
      outcome->found = true;
      if (child.eliminate) {
        node.entries.erase(node.entries.begin() + i);
      } else {
        node.entries[i].rect = child.mbr;
      }
    }
    if (!outcome->found) return Status::OK();
  }

  if (!is_root && node.entries.size() < min_entries_) {
    // CondenseTree: dissolve this node; the parent drops its entry and the
    // survivors are reinserted at this node's level.
    for (const Entry& e : node.entries) {
      orphans->emplace_back(e, node.level);
    }
    KCPQ_RETURN_IF_ERROR(buffer_->Free(page));
    outcome->eliminate = true;
    return Status::OK();
  }
  KCPQ_RETURN_IF_ERROR(WriteNode(page, node));
  outcome->mbr = node.ComputeMbr();
  return Status::OK();
}

}  // namespace kcpq
