// Disk-resident R*-tree (Beckmann, Kriegel, Schneider, Seeger — SIGMOD'90).
//
// The paper stores each point set in an R*-tree ("the most efficient variant
// of the R-tree family", Section 2.2) and all its algorithms read tree nodes
// through a page buffer, counting disk accesses. This implementation:
//
//   * stores one node per page (layout in node.h; 1 KiB pages -> M = 21,
//     m = M/3 = 7, the paper's configuration),
//   * inserts with the full R* machinery: overlap-minimizing ChooseSubtree
//     at the leaf level, margin-driven split-axis selection, and forced
//     reinsertion of the 30% farthest entries on first overflow per level,
//   * supports deletion (Guttman's CondenseTree with orphan reinsertion),
//     range queries, best-first K-nearest-neighbor queries, and STR bulk
//     loading (Leutenegger et al.) as a faster alternative construction
//     path (used by the ablation bench, not the paper reproductions),
//   * exposes ReadNode so that the closest-pair algorithms (src/cpq,
//     src/hs) can traverse two trees in lockstep, with every node access
//     going through — and being counted by — the tree's BufferManager.
//
// Thread-compatibility: construction and mutation (Insert / bulk load)
// are single-threaded, like the paper's system. Read-only traversal of a
// finished tree (ReadNode et al.) is safe from multiple threads provided
// the underlying BufferManager is — the sharded configuration documented
// in buffer/buffer_manager.h; the batch executor (src/exec) relies on
// exactly this to run concurrent queries against shared trees.

#ifndef KCPQ_RTREE_RTREE_H_
#define KCPQ_RTREE_RTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "buffer/buffer_manager.h"
#include "common/status.h"
#include "geometry/metrics.h"
#include "geometry/minkowski.h"
#include "geometry/point.h"
#include "geometry/rect.h"
#include "rtree/node.h"

namespace kcpq {

/// Construction-time knobs. Defaults reproduce the paper / R* paper.
struct RTreeOptions {
  /// m = max(1, floor(M * min_fill_fraction)). Paper: M/3.
  double min_fill_fraction = 1.0 / 3.0;
  /// Fraction of entries force-reinserted on first overflow per level (R*
  /// paper's p = 30%).
  double reinsert_fraction = 0.30;
  /// Disables forced reinsertion (turns insertion into a plain R-tree with
  /// the R* split); ablation knob.
  bool forced_reinsert = true;
};

/// A leaf hit with its (true, non-squared) distance from a query point.
struct Neighbor {
  Entry entry;
  double distance = 0.0;
};

class RStarTree {
 public:
  /// Creates an empty tree. `buffer` (and its storage) must outlive the
  /// tree. The tree allocates a metadata page; persist the returned
  /// `meta_page()` to reopen later.
  static Result<std::unique_ptr<RStarTree>> Create(
      BufferManager* buffer, const RTreeOptions& options = RTreeOptions());

  /// Reopens a tree previously created on `buffer`'s storage.
  static Result<std::unique_ptr<RStarTree>> Open(
      BufferManager* buffer, PageId meta_page,
      const RTreeOptions& options = RTreeOptions());

  /// Bulk loads `items` with the Sort-Tile-Recursive algorithm. Nodes are
  /// packed to `fill_factor * M` entries. O(n log n), orders of magnitude
  /// faster than repeated insertion, but produces differently-shaped (more
  /// tightly packed) trees — see bench_ablation.
  static Result<std::unique_ptr<RStarTree>> BulkLoad(
      BufferManager* buffer, std::vector<std::pair<Point, uint64_t>> items,
      const RTreeOptions& options = RTreeOptions(), double fill_factor = 1.0);

  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;

  /// Inserts one point with a caller-chosen record id (duplicates allowed).
  Status Insert(const Point& p, uint64_t record_id);

  /// Inserts an extended object by its bounding rectangle (the classic
  /// R-tree use case; the paper focuses on points but the structure and
  /// the metrics handle boxes uniformly). Marks the tree as holding
  /// extended objects, which relaxes the leaf-degeneracy validation.
  Status InsertRect(const Rect& rect, uint64_t record_id);

  /// Removes one entry matching (p, record_id) exactly. Returns true if an
  /// entry was removed, false if none matched.
  Result<bool> Erase(const Point& p, uint64_t record_id);

  /// Removes one entry matching (rect, record_id) exactly.
  Result<bool> EraseRect(const Rect& rect, uint64_t record_id);

  /// Appends to `*out` every leaf entry whose point lies in `range`.
  Status RangeQuery(const Rect& range, std::vector<Entry>* out) const;

  /// Best-first K-nearest-neighbor search (Roussopoulos-style bounds over a
  /// priority queue). Returns up to `k` entries in ascending distance under
  /// `metric` (Euclidean by default).
  Status NearestNeighbors(const Point& query, size_t k,
                          std::vector<Neighbor>* out,
                          Metric metric = Metric::kL2) const;

  /// Depth-first scan over all leaf nodes: calls `visit(node)` once per
  /// leaf. Node accesses go through the buffer like any query. The
  /// callback returns false to stop the scan early. `ctx` attributes the
  /// page reads to a query (see ReadNode).
  Status ScanLeaves(const std::function<bool(const Node& leaf)>& visit,
                    QueryContext* ctx = nullptr) const;

  /// Reads the node stored at `page` through the buffer (one counted access
  /// on a miss). The traversal entry point for the CPQ/HS algorithms. When
  /// `ctx` is given the page is charged to that query's ResourceAccountant
  /// and the storage stack may abandon deadline-doomed retries (surfaced as
  /// kDeadlineExceeded — callers treat it as a deadline stop, not an
  /// error).
  Status ReadNode(PageId page, Node* node, QueryContext* ctx = nullptr) const;

  /// Non-blocking ReadNode for the resumable engines: forwards to
  /// BufferManager::TryRead. When `outcome->parked` is set the node was
  /// not available — the waker is registered and the caller must retry
  /// after it fires; otherwise the node is deserialized and outcome
  /// carries the hit/miss accounting of the access.
  Status TryReadNode(PageId page, Node* node, QueryContext* ctx,
                     const Waker& waker,
                     BufferManager::TryReadOutcome* outcome) const;

  /// Tight MBR of the whole tree (reads the root). Empty rect if empty.
  Status RootMbr(Rect* mbr, QueryContext* ctx = nullptr) const;

  /// Writes metadata and flushes the buffer to storage.
  Status Flush();

  /// Deep structural check: balance, occupancy in [m, M], *tight* parent
  /// MBRs, degenerate leaf rects, size bookkeeping, no page aliasing.
  /// OK or a Corruption status describing the first violation.
  Status Validate() const;

  PageId meta_page() const { return meta_page_; }
  PageId root_page() const { return root_page_; }
  /// Number of levels; 1 for a single leaf root, 0 never (root always
  /// exists).
  int height() const { return height_; }
  uint64_t size() const { return size_; }
  size_t max_entries() const { return max_entries_; }
  size_t min_entries() const { return min_entries_; }
  /// True once any non-degenerate rectangle was inserted.
  bool has_extended_objects() const { return has_extended_; }
  BufferManager* buffer() const { return buffer_; }

  /// Per-level node counts and average fill; for diagnostics and benches.
  struct LevelStats {
    int level = 0;
    uint64_t nodes = 0;
    uint64_t entries = 0;
  };
  Status CollectLevelStats(std::vector<LevelStats>* out) const;

  /// Per-level MBR geometry: total area and the sum of pairwise
  /// intersection areas between sibling-or-not nodes of the level. The
  /// overlap sum quantifies how "disjoint" a level's rectangles are — the
  /// property that makes clustered data cheap for CPQ (paper §4.3.2) and
  /// that the R* split minimizes. O(nodes_per_level²) pair scan; intended
  /// for diagnostics, not hot paths.
  struct LevelGeometry {
    int level = 0;
    double total_area = 0.0;
    double pairwise_overlap_area = 0.0;
  };
  Status CollectLevelGeometry(std::vector<LevelGeometry>* out) const;

 private:
  RStarTree(BufferManager* buffer, const RTreeOptions& options);

  struct EraseOutcome {
    bool found = false;
    bool eliminate = false;  // child dropped below m and was dissolved
    Rect mbr;                // new tight MBR when !eliminate
  };

  Status WriteNode(PageId page, const Node& node);
  Status WriteMeta();
  Status ReadMeta();

  /// Inserts `entry` whose subtree belongs at `level`, draining any forced
  /// reinsertions triggered along the way.
  Status InsertAtLevel(const Entry& entry, int level);

  /// Recursive worker. `pending` receives force-reinserted entries;
  /// `*split` receives the new sibling's entry if this subtree split.
  /// `*mbr` always receives the subtree's new tight MBR.
  Status InsertRecursive(PageId page, bool is_root, const Entry& entry,
                         int target_level, uint32_t* reinserted_levels,
                         std::vector<std::pair<Entry, int>>* pending,
                         Rect* mbr, std::vector<Entry>* split);

  /// Handles an overfull `node`: forced reinsert (filling `pending`) or R*
  /// split (filling `*split` with the new sibling entry).
  Status OverflowTreatment(PageId page, bool is_root, Node* node,
                           uint32_t* reinserted_levels,
                           std::vector<std::pair<Entry, int>>* pending,
                           std::vector<Entry>* split);

  Status EraseRecursive(PageId page, bool is_root, const Rect& target,
                        uint64_t record_id,
                        std::vector<std::pair<Entry, int>>* orphans,
                        EraseOutcome* outcome);

  Status ValidateRecursive(PageId page, bool is_root, int expected_level,
                           const Rect* expected_mbr, uint64_t* leaf_entries,
                           std::vector<PageId>* seen) const;

  BufferManager* buffer_;
  size_t max_entries_;
  size_t min_entries_;
  size_t reinsert_count_;
  bool forced_reinsert_;

  PageId meta_page_ = kInvalidPageId;
  PageId root_page_ = kInvalidPageId;
  int height_ = 1;
  uint64_t size_ = 0;
  bool has_extended_ = false;
};

}  // namespace kcpq

#endif  // KCPQ_RTREE_RTREE_H_
