// R*-tree ChooseSubtree and node-split heuristics (Beckmann et al. 1990),
// as free functions over entry vectors so they are unit-testable without a
// tree. Internal to the rtree library.

#ifndef KCPQ_RTREE_SPLIT_H_
#define KCPQ_RTREE_SPLIT_H_

#include <cstddef>
#include <vector>

#include "rtree/node.h"

namespace kcpq {

/// R* subtree choice for inserting `rect` into internal `node`:
///  * children are leaves (node.level == 1): minimum *overlap* enlargement,
///    ties by area enlargement, then by area;
///  * otherwise: minimum area enlargement, ties by area.
/// Precondition: node is internal and non-empty. Returns the entry index.
size_t ChooseSubtree(const Node& node, const Rect& rect);

/// R* split of an overfull entry set (size M+1) into two groups, each with
/// at least `min_entries`:
///  1. choose the split axis minimizing the margin sum over all candidate
///     distributions of both per-axis sorts (by lower then by upper value);
///  2. on that axis choose the distribution with minimal overlap area,
///     ties by minimal total area.
/// Returns the two groups (first keeps the original page by convention).
void SplitEntries(std::vector<Entry> entries, size_t min_entries,
                  std::vector<Entry>* left, std::vector<Entry>* right);

/// Selects the `count` entries of `node` farthest (center-to-center) from
/// the node's MBR center — R* forced-reinsert candidates — and moves them
/// out of `node->entries` into `*removed`, ordered closest-first ("close
/// reinsert" order, the variant the R* paper found best).
void TakeFarthestEntries(Node* node, size_t count,
                         std::vector<Entry>* removed);

}  // namespace kcpq

#endif  // KCPQ_RTREE_SPLIT_H_
