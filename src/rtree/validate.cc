// Deep structural validation. Used by tests after every mutation workload.

#include <algorithm>
#include <string>

#include "rtree/rtree.h"

namespace kcpq {

Status RStarTree::Validate() const {
  uint64_t leaf_entries = 0;
  std::vector<PageId> seen;
  KCPQ_RETURN_IF_ERROR(ValidateRecursive(root_page_, /*is_root=*/true,
                                         height_ - 1, /*expected_mbr=*/nullptr,
                                         &leaf_entries, &seen));
  if (leaf_entries != size_) {
    return Status::Corruption("tree size " + std::to_string(size_) +
                              " but leaves hold " +
                              std::to_string(leaf_entries) + " entries");
  }
  std::sort(seen.begin(), seen.end());
  if (std::adjacent_find(seen.begin(), seen.end()) != seen.end()) {
    return Status::Corruption("a page is referenced by two parents");
  }
  return Status::OK();
}

Status RStarTree::ValidateRecursive(PageId page, bool is_root,
                                    int expected_level,
                                    const Rect* expected_mbr,
                                    uint64_t* leaf_entries,
                                    std::vector<PageId>* seen) const {
  seen->push_back(page);
  Node node;
  KCPQ_RETURN_IF_ERROR(ReadNode(page, &node));
  if (node.level != expected_level) {
    return Status::Corruption("node at level " + std::to_string(node.level) +
                              " where " + std::to_string(expected_level) +
                              " expected (unbalanced tree)");
  }
  if (node.entries.size() > max_entries_) {
    return Status::Corruption("overfull node");
  }
  if (is_root) {
    if (!node.IsLeaf() && node.entries.size() < 2) {
      return Status::Corruption("internal root with fewer than 2 entries");
    }
  } else if (node.entries.size() < min_entries_) {
    return Status::Corruption("underfull non-root node: " +
                              std::to_string(node.entries.size()) + " < " +
                              std::to_string(min_entries_));
  }
  if (expected_mbr != nullptr && !(node.ComputeMbr() == *expected_mbr)) {
    return Status::Corruption("parent entry MBR is not tight");
  }
  if (node.IsLeaf()) {
    if (!has_extended_objects()) {
      for (const Entry& e : node.entries) {
        for (int d = 0; d < kDims; ++d) {
          if (e.rect.lo[d] != e.rect.hi[d]) {
            return Status::Corruption(
                "non-degenerate leaf entry rect in a point tree");
          }
        }
      }
    }
    *leaf_entries += node.entries.size();
    return Status::OK();
  }
  for (const Entry& e : node.entries) {
    KCPQ_RETURN_IF_ERROR(ValidateRecursive(e.id, /*is_root=*/false,
                                           expected_level - 1, &e.rect,
                                           leaf_entries, seen));
  }
  return Status::OK();
}

}  // namespace kcpq
