#include "rtree/node.h"

#include <cstring>
#include <string>

namespace kcpq {

namespace {

// Bounds sanity for deserialization; R-tree heights are single digits even
// for billions of entries, so 64 levels means corruption.
constexpr int32_t kMaxLevel = 64;

void PutU64(uint8_t* dst, uint64_t v) { std::memcpy(dst, &v, sizeof(v)); }
uint64_t GetU64(const uint8_t* src) {
  uint64_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}
void PutF64(uint8_t* dst, double v) { std::memcpy(dst, &v, sizeof(v)); }
double GetF64(const uint8_t* src) {
  double v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}
void PutI32(uint8_t* dst, int32_t v) { std::memcpy(dst, &v, sizeof(v)); }
int32_t GetI32(const uint8_t* src) {
  int32_t v;
  std::memcpy(&v, src, sizeof(v));
  return v;
}

}  // namespace

Status SerializeNode(const Node& node, Page* page) {
  const size_t capacity = NodeCapacity(page->size());
  if (node.entries.size() > capacity) {
    return Status::InvalidArgument(
        "node with " + std::to_string(node.entries.size()) +
        " entries exceeds page capacity " + std::to_string(capacity));
  }
  if (node.level < 0 || node.level > kMaxLevel) {
    return Status::InvalidArgument("bad node level");
  }
  page->Clear();
  uint8_t* base = page->data();
  PutI32(base + 0, node.level);
  PutI32(base + 4, static_cast<int32_t>(node.entries.size()));
  PutU64(base + 8, 0);
  uint8_t* p = base + kNodeHeaderSize;
  for (const Entry& e : node.entries) {
    for (int d = 0; d < kDims; ++d) {
      PutF64(p + d * 8, e.rect.lo[d]);
      PutF64(p + (kDims + d) * 8, e.rect.hi[d]);
    }
    PutU64(p + 2 * kDims * 8, e.id);
    PutU64(p + 2 * kDims * 8 + 8, 0);
    p += kEntrySize;
  }
  return Status::OK();
}

Status DeserializeNode(const Page& page, Node* node) {
  const size_t capacity = NodeCapacity(page.size());
  const uint8_t* base = page.data();
  const int32_t level = GetI32(base + 0);
  const int32_t count = GetI32(base + 4);
  if (level < 0 || level > kMaxLevel) {
    return Status::Corruption("node level out of range");
  }
  if (count < 0 || static_cast<size_t>(count) > capacity) {
    return Status::Corruption("node entry count out of range");
  }
  node->level = level;
  node->entries.clear();
  node->entries.reserve(count);
  const uint8_t* p = base + kNodeHeaderSize;
  for (int32_t i = 0; i < count; ++i) {
    Entry e;
    for (int d = 0; d < kDims; ++d) {
      e.rect.lo[d] = GetF64(p + d * 8);
      e.rect.hi[d] = GetF64(p + (kDims + d) * 8);
    }
    e.id = GetU64(p + 2 * kDims * 8);
    if (!e.rect.IsValid()) {
      return Status::Corruption("entry rect with lo > hi");
    }
    node->entries.push_back(e);
    p += kEntrySize;
  }
  return Status::OK();
}

}  // namespace kcpq
