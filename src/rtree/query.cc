// Range query, best-first K-nearest-neighbor query, and level statistics.

#include <cmath>
#include <queue>

#include "rtree/rtree.h"

namespace kcpq {

Status RStarTree::RangeQuery(const Rect& range, std::vector<Entry>* out) const {
  // Iterative DFS; a leaf entry's degenerate rect intersects `range` iff the
  // point lies inside it.
  std::vector<PageId> stack = {root_page_};
  while (!stack.empty()) {
    const PageId page = stack.back();
    stack.pop_back();
    Node node;
    KCPQ_RETURN_IF_ERROR(ReadNode(page, &node));
    for (const Entry& e : node.entries) {
      if (!range.Intersects(e.rect)) continue;
      if (node.IsLeaf()) {
        out->push_back(e);
      } else {
        stack.push_back(e.id);
      }
    }
  }
  return Status::OK();
}

Status RStarTree::NearestNeighbors(const Point& query, size_t k,
                                   std::vector<Neighbor>* out,
                                   Metric metric) const {
  if (k == 0) return Status::OK();
  // Best-first search: a single priority queue over subtrees (keyed by
  // MINDIST to their MBR) and leaf entries (keyed by exact distance). When
  // an entry reaches the front, no unexplored item can beat it. Keys live
  // in the metric's power space (see geometry/minkowski.h).
  struct Item {
    double dist2;
    bool is_node;
    PageId page;   // when is_node
    Entry entry;   // when !is_node
  };
  const Rect query_rect = Rect::FromPoint(query);
  auto cmp = [](const Item& a, const Item& b) { return a.dist2 > b.dist2; };
  std::priority_queue<Item, std::vector<Item>, decltype(cmp)> queue(cmp);
  queue.push(Item{0.0, true, root_page_, Entry{}});
  while (!queue.empty()) {
    const Item item = queue.top();
    queue.pop();
    if (!item.is_node) {
      out->push_back(Neighbor{item.entry, PowToDistance(item.dist2, metric)});
      if (out->size() == k) return Status::OK();
      continue;
    }
    Node node;
    KCPQ_RETURN_IF_ERROR(ReadNode(item.page, &node));
    for (const Entry& e : node.entries) {
      // MINDIST to the entry rect: exact point distance for point data,
      // nearest-face distance for extended objects and subtree MBRs.
      const double key = MinMinDistPow(query_rect, e.rect, metric);
      if (node.IsLeaf()) {
        queue.push(Item{key, false, kInvalidPageId, e});
      } else {
        queue.push(Item{key, true, e.id, Entry{}});
      }
    }
  }
  return Status::OK();  // fewer than k points in the tree
}

Status RStarTree::CollectLevelGeometry(
    std::vector<LevelGeometry>* out) const {
  out->assign(height_, LevelGeometry{});
  for (int i = 0; i < height_; ++i) (*out)[i].level = i;
  // Gather every node's MBR per level, then the O(n^2) overlap sums.
  std::vector<std::vector<Rect>> mbrs(height_);
  {
    Node root;
    KCPQ_RETURN_IF_ERROR(ReadNode(root_page_, &root));
    mbrs[root.level].push_back(root.ComputeMbr());
  }
  std::vector<PageId> stack = {root_page_};
  while (!stack.empty()) {
    const PageId page = stack.back();
    stack.pop_back();
    Node node;
    KCPQ_RETURN_IF_ERROR(ReadNode(page, &node));
    if (node.IsLeaf()) continue;
    for (const Entry& e : node.entries) {
      mbrs[node.level - 1].push_back(e.rect);
      stack.push_back(e.id);
    }
  }
  for (int level = 0; level < height_; ++level) {
    LevelGeometry& geometry = (*out)[level];
    const std::vector<Rect>& rects = mbrs[level];
    for (size_t i = 0; i < rects.size(); ++i) {
      geometry.total_area += rects[i].Area();
      for (size_t j = i + 1; j < rects.size(); ++j) {
        geometry.pairwise_overlap_area +=
            IntersectionArea(rects[i], rects[j]);
      }
    }
  }
  return Status::OK();
}

Status RStarTree::ScanLeaves(
    const std::function<bool(const Node& leaf)>& visit,
    QueryContext* ctx) const {
  std::vector<PageId> stack = {root_page_};
  while (!stack.empty()) {
    const PageId page = stack.back();
    stack.pop_back();
    Node node;
    KCPQ_RETURN_IF_ERROR(ReadNode(page, &node, ctx));
    if (node.IsLeaf()) {
      if (!visit(node)) return Status::OK();
      continue;
    }
    for (const Entry& e : node.entries) stack.push_back(e.id);
  }
  return Status::OK();
}

Status RStarTree::CollectLevelStats(std::vector<LevelStats>* out) const {
  out->assign(height_, LevelStats{});
  for (int i = 0; i < height_; ++i) (*out)[i].level = i;
  std::vector<PageId> stack = {root_page_};
  while (!stack.empty()) {
    const PageId page = stack.back();
    stack.pop_back();
    Node node;
    KCPQ_RETURN_IF_ERROR(ReadNode(page, &node));
    if (node.level < 0 || node.level >= height_) {
      return Status::Corruption("node level outside tree height");
    }
    LevelStats& stats = (*out)[node.level];
    ++stats.nodes;
    stats.entries += node.entries.size();
    if (!node.IsLeaf()) {
      for (const Entry& e : node.entries) stack.push_back(e.id);
    }
  }
  return Status::OK();
}

}  // namespace kcpq
