// R-tree node: in-memory form and on-page serialization.
//
// On-page layout (little-endian, as on every platform we target):
//
//   offset 0   int32   level      (0 = leaf)
//   offset 4   int32   count      (number of entries)
//   offset 8   int64   reserved
//   offset 16  entries, kEntrySize (48 for 2-D) bytes each:
//     2*kDims x f64  MBR (lo[0..kDims), hi[0..kDims))
//     int64          child page id (internal) / record id (leaf)
//     int64          reserved (payload hook; also sizes the 2-D entry so
//                    that the paper's 1 KiB page yields exactly M = 21)
//
// Leaf entries store the indexed point as a degenerate rectangle
// (lo == hi), which lets every distance metric treat node MBRs and data
// points uniformly.

#ifndef KCPQ_RTREE_NODE_H_
#define KCPQ_RTREE_NODE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geometry/rect.h"
#include "storage/page.h"

namespace kcpq {

/// One slot of a node: a rectangle plus a child page id (internal nodes) or
/// a user record id (leaves).
struct Entry {
  Rect rect;
  uint64_t id = 0;

  /// Leaf-entry point accessor (valid when the rect is degenerate).
  Point AsPoint() const {
    Point p;
    for (int d = 0; d < kDims; ++d) p.coord[d] = rect.lo[d];
    return p;
  }

  static Entry ForPoint(const Point& p, uint64_t record_id) {
    return Entry{Rect::FromPoint(p), record_id};
  }
};

/// In-memory image of one node page.
struct Node {
  int32_t level = 0;  // 0 = leaf; root level = tree height - 1
  std::vector<Entry> entries;

  bool IsLeaf() const { return level == 0; }

  /// Tight MBR over the entries; Rect::Empty() for an empty node.
  Rect ComputeMbr() const {
    Rect mbr = Rect::Empty();
    for (const Entry& e : entries) mbr.Expand(e.rect);
    return mbr;
  }
};

/// Size of the fixed node header on a page, in bytes.
inline constexpr size_t kNodeHeaderSize = 16;
/// Size of one serialized entry, in bytes: the MBR (2 * kDims doubles),
/// the child/record id, and one reserved word. Derived from kDims so the
/// whole on-disk layout follows geometry/point.h's dimension constant;
/// with kDims = 2 this is 48 bytes — the paper's M = 21 on 1 KiB pages.
inline constexpr size_t kEntrySize =
    2 * kDims * sizeof(double) + 2 * sizeof(int64_t);

/// Maximum entries per node for a page size (the R-tree's M).
/// 1 KiB pages give 21, the paper's configuration.
inline constexpr size_t NodeCapacity(size_t page_size) {
  return (page_size - kNodeHeaderSize) / kEntrySize;
}

/// Serializes `node` into `*page` (must already have the target page size).
/// Fails if the node has more entries than the page can hold.
Status SerializeNode(const Node& node, Page* page);

/// Parses `page` into `*node`. Fails on an impossible count or level.
Status DeserializeNode(const Page& page, Node* node);

}  // namespace kcpq

#endif  // KCPQ_RTREE_NODE_H_
