// Multi-way closest tuples: scaling beyond the paper's m = 2 (Section 6
// future work). Sweeps the number of inputs and the query-graph shape,
// reporting disk accesses and the tuple-heap high-water mark.

#include <cstdio>

#include "bench/bench_util.h"
#include "cpq/multiway.h"

namespace kcpq {
namespace bench {
namespace {

std::vector<MultiwayEdge> MakeGraph(int m, const std::string& shape) {
  std::vector<MultiwayEdge> graph;
  if (shape == "chain") {
    for (int i = 0; i + 1 < m; ++i) graph.push_back({i, i + 1});
  } else if (shape == "clique") {
    for (int i = 0; i < m; ++i) {
      for (int j = i + 1; j < m; ++j) graph.push_back({i, j});
    }
  } else {
    for (int i = 1; i < m; ++i) graph.push_back({0, i});
  }
  return graph;
}

void Main() {
  PrintFigureHeader("Multiway",
                    "K closest tuples over m trees (future work (a)); "
                    "uniform data, no buffer");
  const size_t n = Scaled(20000);
  std::vector<std::unique_ptr<TreeStore>> stores;
  std::vector<TreeStore::View> views;
  std::vector<const RStarTree*> trees;
  for (int i = 0; i < 4; ++i) {
    stores.push_back(MakeStore(DataKind::kUniform, n, 1.0, 5000 + i));
    views.push_back(stores.back()->OpenView(0));
    trees.push_back(views.back().tree.get());
  }

  Table table({"m", "graph", "K", "disk accesses", "tuple heap max",
               "seconds"});
  for (const int m : {2, 3, 4}) {
    for (const char* shape : {"chain", "clique", "star"}) {
      if (m == 2 && shape != std::string("chain")) continue;
      for (const size_t k : {1, 10, 100}) {
        MultiwayOptions options;
        options.k = k;
        CpqStats stats;
        Timer timer;
        std::vector<const RStarTree*> subset(trees.begin(),
                                             trees.begin() + m);
        auto result = MultiwayKClosestTuples(subset, MakeGraph(m, shape),
                                             options, &stats);
        KCPQ_CHECK_OK(result.status());
        table.AddRow({Table::Count(m), shape, Table::Count(k),
                      Table::Count(stats.disk_accesses()),
                      Table::Count(stats.max_heap_size),
                      Table::Num(timer.ElapsedSeconds(), 3)});
      }
    }
  }
  table.Print(stdout);
  std::printf(
      "\nNo paper baseline exists for this query; the table documents the "
      "scaling of the synchronous best-first tuple traversal.\n");
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() { kcpq::bench::Main(); }
