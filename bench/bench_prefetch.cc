// Speculative heap-frontier prefetch benchmark.
//
// Not a figure of the paper — this harness measures the asynchronous I/O
// pipeline layered on top of the reproduction: a HEAP K-CPQ with
// speculative prefetch of the priority queue's frontier pages
// (CpqOptions::prefetch_window), over a simulated disk whose physical
// page reads sleep (storage/latency_storage.h).
//
// For each read latency in {0, 50, 200} us the same cold query runs with
// window W in {0, 2, 4, 8, 16}. Prefetched pages are staged outside the
// buffer's frame table and every demand miss is still counted, so the
// paper metric — disk accesses — must be byte-identical down the column;
// only wall clock changes. The harness checks that invariant and reports
// the hit/waste split of the speculation.
//
// Expectation: at 200 us latency, W = 8 is >= 2x faster than W = 0. At
// zero latency speculation can only lose (it buys overlap, and there is
// nothing to overlap); the 0 us column bounds that overhead.
//
// Results also land in BENCH_prefetch.json for machine consumption.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace kcpq {
namespace bench {
namespace {

// Trees much larger than the buffer, so the frontier's pages are cold and
// every speculative read is a real (simulated) disk read.
constexpr size_t kTreeSize = 20000;
constexpr size_t kBufferPages = 64;
constexpr size_t kShards = 64;
constexpr size_t kK = 100;

constexpr size_t kWindows[] = {0, 2, 4, 8, 16};
constexpr std::chrono::microseconds kLatencies[] = {
    std::chrono::microseconds(0), std::chrono::microseconds(50),
    std::chrono::microseconds(200)};

struct RunResult {
  double seconds = 0.0;
  uint64_t disk_accesses = 0;
  uint64_t issued = 0;
  uint64_t hits = 0;
  uint64_t wasted = 0;
};

// One cold HEAP K-CPQ: fresh views (empty buffers) per run so the disk
// access count depends only on the query, not on prior runs.
RunResult RunOnce(TreeStore& p, TreeStore& q, size_t window,
                  std::chrono::microseconds latency) {
  TreeStore::View vp = p.OpenParallelView(kBufferPages, kShards, latency);
  TreeStore::View vq = q.OpenParallelView(kBufferPages, kShards, latency);
  CpqOptions options;
  options.algorithm = CpqAlgorithm::kHeap;
  options.k = kK;
  options.prefetch_window = window;
  CpqStats stats;
  Timer timer;
  auto result = KClosestPairs(*vp.tree, *vq.tree, options, &stats);
  RunResult r;
  r.seconds = timer.ElapsedSeconds();
  KCPQ_CHECK_OK(result.status());
  r.disk_accesses = stats.disk_accesses();
  // Wasted speculation completes on I/O pool threads, so read the
  // buffer-level aggregate rather than this thread's counters. The engine
  // drained before returning: pending is zero and the identity
  // issued == hits + wasted holds exactly.
  const BufferStats bp = vp.buffer->AggregateStats();
  const BufferStats bq = vq.buffer->AggregateStats();
  r.issued = bp.prefetch_issued + bq.prefetch_issued;
  r.hits = bp.prefetch_hits + bq.prefetch_hits;
  r.wasted = bp.prefetch_wasted + bq.prefetch_wasted;
  return r;
}

void Main() {
  PrintFigureHeader("Prefetch",
                    "HEAP K-CPQ wall clock vs speculative prefetch window "
                    "at simulated disk latencies");
  std::printf(
      "uniform %zu x %zu, K = %zu, buffer %zu pages/tree (%zu shards)\n",
      Scaled(kTreeSize), Scaled(kTreeSize), kK, kBufferPages, kShards);
  BenchJson json("prefetch");
  auto store_p = MakeStore(DataKind::kUniform, Scaled(kTreeSize), 1.0, 21);
  auto store_q = MakeStore(DataKind::kUniform, Scaled(kTreeSize), 1.0, 22);

  bool disk_identical = true;
  for (const std::chrono::microseconds latency : kLatencies) {
    std::printf("\nread latency %lld us\n",
                static_cast<long long>(latency.count()));
    Table table({"window", "seconds", "speedup", "disk accesses", "issued",
                 "hits", "wasted", "hit%"});
    double base_seconds = 0.0;
    uint64_t base_disk = 0;
    for (const size_t window : kWindows) {
      const RunResult r = RunOnce(*store_p, *store_q, window, latency);
      if (window == 0) {
        base_seconds = r.seconds;
        base_disk = r.disk_accesses;
      }
      if (r.disk_accesses != base_disk) disk_identical = false;
      const double speedup = base_seconds / r.seconds;
      const double hit_pct =
          r.issued > 0 ? 100.0 * static_cast<double>(r.hits) /
                             static_cast<double>(r.issued)
                       : 0.0;
      table.AddRow({std::to_string(window), Table::Num(r.seconds, 4),
                    Table::Num(speedup, 2),
                    Table::Count(static_cast<long long>(r.disk_accesses)),
                    Table::Count(static_cast<long long>(r.issued)),
                    Table::Count(static_cast<long long>(r.hits)),
                    Table::Count(static_cast<long long>(r.wasted)),
                    Table::Num(hit_pct, 1)});
      if (latency == std::chrono::microseconds(200)) {
        if (window == 8) {
          json.AddScalar("speedup_200us_w8", speedup);
          json.AddScalar("hit_ratio_200us_w8", hit_pct / 100.0);
        }
        if (window == 16) json.AddScalar("speedup_200us_w16", speedup);
      }
    }
    table.Print(stdout);
    char key[64];
    std::snprintf(key, sizeof(key), "latency_%lldus",
                  static_cast<long long>(latency.count()));
    json.AddTable(key, table);
  }
  std::printf(
      "\ndisk accesses identical across windows: %s (prefetch must not "
      "perturb the paper metric)\n",
      disk_identical ? "yes" : "NO — BUG");
  std::printf(
      "Expectation: >= 2x speedup at 200 us with window 8; ~1x (small "
      "overhead) at 0 us.\n");
  json.AddScalar("disk_accesses_identical", disk_identical ? 1.0 : 0.0);
  json.Write();
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() { kcpq::bench::Main(); }
