// Ablation studies beyond the paper's figures, for the design choices
// DESIGN.md calls out:
//   A. MAXMAXDIST count-based pruning for K > 1 (Section 3.8's "more
//      complicated modification") vs the plain K-heap bound.
//   B. Insertion-built R*-trees vs STR bulk-loaded trees as CPQ substrate.
//   C. Buffer replacement policies (LRU vs FIFO vs Random).
//   D. Forced reinsertion on/off (R* vs plain split-only insertion).

#include <cstdio>

#include "bench/bench_util.h"
#include "buffer/replacement_policy.h"

namespace kcpq {
namespace bench {
namespace {

void AblationMaxMaxPruning() {
  // In the depth-first recursive algorithms the K-heap fills within the
  // first leaf visit, so this bound rarely fires there; for HEAP the
  // traversal is best-first and reaches leaves last, so the bound gates
  // what enters the pair heap. Report both cost and heap pressure.
  std::printf("\nA. MAXMAXDIST K-pruning vs plain K-heap bound "
              "(HEAP, R vs uniform, no buffer, overlap 50%%; K=1 uses the\n"
              "   MINMAXDIST special case and is unaffected by the toggle)\n");
  auto p = MakeStore(DataKind::kSequoiaLike, Scaled(40000), 1.0, 77);
  auto q = MakeStore(DataKind::kUniform, Scaled(40000), 0.5, 3001);
  Table table({"K", "accesses(with)", "accesses(without)", "maxheap(with)",
               "maxheap(without)"});
  for (const size_t k : {10, 100, 1000, 10000}) {
    uint64_t accesses[2] = {0, 0}, heap[2] = {0, 0};
    int i = 0;
    for (const bool enabled : {true, false}) {
      CpqOptions options;
      options.algorithm = CpqAlgorithm::kHeap;
      options.k = k;
      options.use_maxmaxdist_pruning = enabled;
      const QueryOutcome outcome = RunCpq(*p, *q, options, 0);
      accesses[i] = outcome.stats.disk_accesses();
      heap[i] = outcome.stats.max_heap_size;
      ++i;
    }
    table.AddRow({Table::Count(k), Table::Count(accesses[0]),
                  Table::Count(accesses[1]), Table::Count(heap[0]),
                  Table::Count(heap[1])});
  }
  table.Print(stdout);
}

void AblationBulkLoad() {
  std::printf("\nB. Insertion-built vs STR bulk-loaded trees "
              "(HEAP, uniform 40K/40K, overlap 100%%, no buffer)\n");
  const size_t n = Scaled(40000);
  // Insertion-built (the paper's construction).
  auto p_ins = MakeStore(DataKind::kUniform, n, 1.0, 3002);
  auto q_ins = MakeStore(DataKind::kUniform, n, 1.0, 3003);
  // Bulk-loaded twins over the same data.
  MemoryStorageManager sp, sq;
  BufferManager bp(&sp, 0), bq(&sq, 0);
  std::vector<std::pair<Point, uint64_t>> p_items, q_items;
  {
    const auto pts = GenerateUniform(n, UnitWorkspace(), 3002);
    for (size_t i = 0; i < pts.size(); ++i) p_items.emplace_back(pts[i], i);
    const auto qts = GenerateUniform(n, UnitWorkspace(), 3003);
    for (size_t i = 0; i < qts.size(); ++i) q_items.emplace_back(qts[i], i);
  }
  auto tp = RStarTree::BulkLoad(&bp, p_items).value();
  auto tq = RStarTree::BulkLoad(&bq, q_items).value();

  Table table({"K", "insertion-built", "bulk-loaded(STR)"});
  for (const size_t k : {1, 100, 10000}) {
    CpqOptions options;
    options.algorithm = CpqAlgorithm::kHeap;
    options.k = k;
    const uint64_t ins =
        RunCpq(*p_ins, *q_ins, options, 0).stats.disk_accesses();
    CpqStats stats;
    KCPQ_CHECK_OK(KClosestPairs(*tp, *tq, options, &stats).status());
    table.AddRow({Table::Count(k), Table::Count(ins),
                  Table::Count(stats.disk_accesses())});
  }
  table.Print(stdout);
}

// Builds one tree directly on `storage`, returning its meta page.
PageId BuildOn(MemoryStorageManager* storage, DataKind kind, size_t n,
               uint64_t seed) {
  BufferManager buffer(storage, 0);
  auto tree = RStarTree::Create(&buffer).value();
  const auto points = kind == DataKind::kUniform
                          ? GenerateUniform(n, UnitWorkspace(), seed)
                          : GenerateSequoiaLike(n, UnitWorkspace(), seed);
  for (size_t i = 0; i < points.size(); ++i) {
    KCPQ_CHECK_OK(tree->Insert(points[i], i));
  }
  KCPQ_CHECK_OK(tree->Flush());
  return tree->meta_page();
}

void AblationReplacementPolicy() {
  std::printf("\nC. Buffer replacement policies "
              "(STD, K=100, R vs uniform, overlap 100%%, B=64)\n");
  MemoryStorageManager sp, sq;
  const PageId meta_p =
      BuildOn(&sp, DataKind::kSequoiaLike, Scaled(40000), 77);
  const PageId meta_q = BuildOn(&sq, DataKind::kUniform, Scaled(40000), 3004);

  Table table({"policy", "disk accesses"});
  for (const int which : {0, 1, 2}) {
    auto make = [which]() -> std::unique_ptr<ReplacementPolicy> {
      if (which == 0) return MakeLruPolicy();
      if (which == 1) return MakeFifoPolicy();
      return MakeRandomPolicy(99);
    };
    BufferManager qp(&sp, 32, make()), qq(&sq, 32, make());
    auto tp = RStarTree::Open(&qp, meta_p).value();
    auto tq = RStarTree::Open(&qq, meta_q).value();
    CpqOptions options;
    options.algorithm = CpqAlgorithm::kSortedDistances;
    options.k = 100;
    CpqStats stats;
    KCPQ_CHECK_OK(KClosestPairs(*tp, *tq, options, &stats).status());
    table.AddRow({make()->name(), Table::Count(stats.disk_accesses())});
  }
  table.Print(stdout);
}

void AblationForcedReinsert() {
  std::printf("\nD. Forced reinsertion on/off "
              "(HEAP, K=1, uniform 40K/40K, overlap 100%%, no buffer)\n");
  Table table({"forced reinsert", "disk accesses", "leaf nodes"});
  for (const bool reinsert : {true, false}) {
    RTreeOptions tree_options;
    tree_options.forced_reinsert = reinsert;
    TreeStore p(DataKind::kUniform, Scaled(40000), UnitWorkspace(), 3005,
                tree_options);
    TreeStore q(DataKind::kUniform, Scaled(40000), UnitWorkspace(), 3006,
                tree_options);
    CpqOptions options;
    options.algorithm = CpqAlgorithm::kHeap;
    options.k = 1;
    const QueryOutcome outcome = RunCpq(p, q, options, 0);
    auto view = p.OpenView(0);
    std::vector<RStarTree::LevelStats> stats;
    KCPQ_CHECK_OK(view.tree->CollectLevelStats(&stats));
    table.AddRow({reinsert ? "on (R*)" : "off",
                  Table::Count(outcome.stats.disk_accesses()),
                  Table::Count(stats[0].nodes)});
  }
  table.Print(stdout);
}

void AblationHybridQueue() {
  // The DT threshold of [11]'s hybrid priority queue, which the authors
  // left open ("a policy for choosing DT is a subject for further
  // investigation"): smaller DT keeps less in memory but pays overflow
  // page I/O.
  std::printf("\nE. Hybrid-queue memory threshold DT "
              "(SML incremental join, K=10000, uniform 40K/40K, 100%% "
              "overlap)\n");
  auto p = MakeStore(DataKind::kUniform, Scaled(40000), 1.0, 3007);
  auto q = MakeStore(DataKind::kUniform, Scaled(40000), 1.0, 3008);
  Table table({"DT (distance)", "tree accesses", "queue spill reads",
               "queue spill writes", "max queue"});
  const double inf = std::numeric_limits<double>::infinity();
  for (const double dt : {inf, 1e-4, 1e-6, 1e-8, 0.0}) {
    HsOptions options;
    // DT is compared against squared distances internally.
    options.queue_distance_threshold = dt;
    const HsOutcome outcome = RunHs(*p, *q, 10000, options, 0);
    char label[32];
    if (dt == inf) {
      std::snprintf(label, sizeof(label), "inf (all in memory)");
    } else {
      std::snprintf(label, sizeof(label), "%.0e", dt);
    }
    table.AddRow({label, Table::Count(outcome.stats.disk_accesses()),
                  Table::Count(outcome.stats.queue_spill_reads),
                  Table::Count(outcome.stats.queue_spill_writes),
                  Table::Count(outcome.stats.max_queue_size)});
  }
  table.Print(stdout);
  std::printf("Tree accesses are DT-independent (the queue orders pops the "
              "same way); DT only trades memory for queue I/O.\n");
}

void AblationBufferSplit() {
  // The paper dedicates B/2 pages to each tree (Section 4.3.3). Would one
  // shared pool of B pages do better? Both trees live on one storage, so
  // a single buffer can serve them; LRU then allocates the budget by
  // demand instead of by fiat.
  std::printf("\nF. Split (B/2 + B/2) vs shared (B) buffer "
              "(STD, K=100, R vs uniform 40K, overlap 100%%)\n");
  Table table({"B(total)", "split", "shared"});
  // Build both trees on one storage for the shared configuration.
  MemoryStorageManager shared_storage;
  const PageId meta_p =
      BuildOn(&shared_storage, DataKind::kSequoiaLike, Scaled(40000), 77);
  const PageId meta_q =
      BuildOn(&shared_storage, DataKind::kUniform, Scaled(40000), 3009);
  // And separately for the split configuration.
  auto p = MakeStore(DataKind::kSequoiaLike, Scaled(40000), 1.0, 77);
  auto q = MakeStore(DataKind::kUniform, Scaled(40000), 1.0, 3009);

  for (const size_t total : {8, 32, 128, 512}) {
    CpqOptions options;
    options.algorithm = CpqAlgorithm::kSortedDistances;
    options.k = 100;
    const uint64_t split = RunCpq(*p, *q, options, total).stats.disk_accesses();

    BufferManager shared_buffer(&shared_storage, total);
    auto tp = RStarTree::Open(&shared_buffer, meta_p).value();
    auto tq = RStarTree::Open(&shared_buffer, meta_q).value();
    // CpqStats would double-count a shared buffer's misses (it samples the
    // same buffer from both trees); count physical reads directly.
    const uint64_t reads_before = shared_storage.stats().reads;
    KCPQ_CHECK_OK(KClosestPairs(*tp, *tq, options).status());
    const uint64_t shared = shared_storage.stats().reads - reads_before;
    table.AddRow(
        {Table::Count(total), Table::Count(split), Table::Count(shared)});
  }
  table.Print(stdout);
}

void Main() {
  PrintFigureHeader("Ablations",
                    "Design-choice studies beyond the paper's figures");
  AblationMaxMaxPruning();
  AblationBulkLoad();
  AblationReplacementPolicy();
  AblationForcedReinsert();
  AblationHybridQueue();
  AblationBufferSplit();
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() { kcpq::bench::Main(); }
