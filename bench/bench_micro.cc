// Microbenchmarks (google-benchmark) for the building blocks: MBR metrics,
// node (de)serialization, R*-tree insertion and queries, and one end-to-end
// K-CPQ per algorithm. Not part of the paper; useful when optimizing.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/random.h"
#include "geometry/metrics.h"
#include "rtree/node.h"

namespace kcpq {
namespace {

Rect RandomRectFor(Xoshiro256pp& rng) {
  Rect r;
  for (int d = 0; d < kDims; ++d) {
    const double a = rng.NextDouble();
    r.lo[d] = a;
    r.hi[d] = a + rng.NextDouble() * 0.2;
  }
  return r;
}

void BM_MinMinDist(benchmark::State& state) {
  Xoshiro256pp rng(1);
  const Rect a = RandomRectFor(rng), b = RandomRectFor(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinMinDistSquared(a, b));
  }
}
BENCHMARK(BM_MinMinDist);

void BM_MinMaxDist(benchmark::State& state) {
  Xoshiro256pp rng(2);
  const Rect a = RandomRectFor(rng), b = RandomRectFor(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinMaxDistSquared(a, b));
  }
}
BENCHMARK(BM_MinMaxDist);

void BM_MaxMaxDist(benchmark::State& state) {
  Xoshiro256pp rng(3);
  const Rect a = RandomRectFor(rng), b = RandomRectFor(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MaxMaxDistSquared(a, b));
  }
}
BENCHMARK(BM_MaxMaxDist);

void BM_NodeSerialize(benchmark::State& state) {
  Node node;
  node.level = 0;
  Xoshiro256pp rng(4);
  for (int i = 0; i < 21; ++i) {
    node.entries.push_back(
        Entry::ForPoint(Point{{rng.NextDouble(), rng.NextDouble()}}, i));
  }
  Page page(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SerializeNode(node, &page));
  }
}
BENCHMARK(BM_NodeSerialize);

void BM_NodeDeserialize(benchmark::State& state) {
  Node node;
  node.level = 0;
  Xoshiro256pp rng(5);
  for (int i = 0; i < 21; ++i) {
    node.entries.push_back(
        Entry::ForPoint(Point{{rng.NextDouble(), rng.NextDouble()}}, i));
  }
  Page page(1024);
  KCPQ_CHECK_OK(SerializeNode(node, &page));
  Node out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DeserializeNode(page, &out));
  }
}
BENCHMARK(BM_NodeDeserialize);

void BM_RTreeInsert(benchmark::State& state) {
  const auto points =
      GenerateUniform(100000, UnitWorkspace(), 6);
  size_t i = 0;
  MemoryStorageManager storage;
  BufferManager buffer(&storage, 0);
  auto tree = RStarTree::Create(&buffer).value();
  for (auto _ : state) {
    KCPQ_CHECK_OK(tree->Insert(points[i % points.size()], i));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTreeInsert);

void BM_RTreeKnn(benchmark::State& state) {
  bench::TreeStore store(bench::DataKind::kUniform, 50000, UnitWorkspace(),
                         7);
  auto view = store.OpenView(256);
  Xoshiro256pp rng(8);
  for (auto _ : state) {
    std::vector<Neighbor> nn;
    const Point q{{rng.NextDouble(), rng.NextDouble()}};
    KCPQ_CHECK_OK(view.tree->NearestNeighbors(q, state.range(0), &nn));
    benchmark::DoNotOptimize(nn);
  }
}
BENCHMARK(BM_RTreeKnn)->Arg(1)->Arg(10)->Arg(100);

void BM_Kcpq(benchmark::State& state) {
  static bench::TreeStore* p = new bench::TreeStore(
      bench::DataKind::kSequoiaLike, 20000, UnitWorkspace(), 9);
  static bench::TreeStore* q = new bench::TreeStore(
      bench::DataKind::kUniform, 20000, UnitWorkspace(), 10);
  const CpqAlgorithm algorithm = static_cast<CpqAlgorithm>(state.range(0));
  for (auto _ : state) {
    auto vp = p->OpenView(0);
    auto vq = q->OpenView(0);
    CpqOptions options;
    options.algorithm = algorithm;
    options.k = 10;
    benchmark::DoNotOptimize(KClosestPairs(*vp.tree, *vq.tree, options));
  }
}
BENCHMARK(BM_Kcpq)
    ->Arg(static_cast<int>(CpqAlgorithm::kExhaustive))
    ->Arg(static_cast<int>(CpqAlgorithm::kSortedDistances))
    ->Arg(static_cast<int>(CpqAlgorithm::kHeap));

}  // namespace
}  // namespace kcpq

BENCHMARK_MAIN();
