// Completion-driven scheduler benchmark: concurrent-query throughput of
// the resumable engine core vs the blocking thread pool.
//
// Not a figure of the paper — this harness measures the executor layered
// on top of the reproduction (exec/scheduler.h, docs/io.md). The same
// batch of HEAP K-CPQ queries runs twice over a cold simulated disk whose
// physical page reads sleep 200 us (storage/latency_storage.h):
//
//   blocking   4 workers, one query pinned per worker; every miss stalls
//              its worker for the full read latency, so at most 4 reads
//              are ever in flight.
//   resumable  the same 4 workers multiplex all queries as resumable
//              state machines; a miss parks the query and the worker
//              steps another, so in-flight reads are bounded by the I/O
//              pool (KCPQ_IO_THREADS), not by the worker count.
//
// Buffers run at the paper's zero-capacity setting, which makes every
// per-query disk-access count interleaving-independent: the harness
// checks that both executors return bit-identical pairs and identical
// per-query disk accesses — the speedup comes purely from overlapping
// I/O waits, never from doing different work.
//
// Expectation: >= 3x throughput for the resumable executor (the
// acceptance bar; set RESUMABLE_MIN_SPEEDUP to gate the exit status, e.g.
// 2 for the CI smoke run at REPRO_SCALE=0.05).
//
// Results also land in BENCH_resumable.json for machine consumption.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "exec/batch.h"

namespace kcpq {
namespace bench {
namespace {

constexpr size_t kTreeSize = 20000;
constexpr size_t kShards = 64;
constexpr size_t kQueries = 96;
constexpr size_t kWorkers = 4;
constexpr std::chrono::microseconds kLatency(200);

// The paper's zero-buffer setting: every node read is a (simulated) disk
// access, so per-query counts cannot depend on how queries interleave.
constexpr size_t kBufferPages = 0;

struct BatchOutcome {
  std::vector<BatchQueryResult> results;
  double makespan = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  uint64_t disk_accesses = 0;
};

std::vector<BatchQuery> MakeBatch() {
  std::vector<BatchQuery> batch(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    batch[i].kind = BatchQueryKind::kClosestPairs;
    batch[i].options.algorithm = CpqAlgorithm::kHeap;
    // Mixed result sizes so queries have different lifetimes — the
    // multiplexing case, not N copies of one query.
    batch[i].options.k = (i % 3 == 0) ? 1 : (i % 3 == 1) ? 10 : 100;
  }
  return batch;
}

BatchOutcome RunBatch(TreeStore& p, TreeStore& q, SchedulerMode mode) {
  TreeStore::View vp = p.OpenParallelView(kBufferPages, kShards, kLatency);
  TreeStore::View vq = q.OpenParallelView(kBufferPages, kShards, kLatency);
  const std::vector<BatchQuery> batch = MakeBatch();
  BatchOptions options;
  options.threads = kWorkers;
  options.scheduler = mode;
  options.max_inflight = kQueries;  // multiplex the whole batch
  BatchStats stats;
  Timer timer;
  BatchOutcome out;
  out.results =
      BatchKClosestPairs(*vp.tree, *vq.tree, batch, options, &stats);
  out.makespan = timer.ElapsedSeconds();
  std::vector<double> latencies;
  for (const BatchQueryResult& r : out.results) {
    KCPQ_CHECK_OK(r.status);
    out.disk_accesses += r.stats.disk_accesses();
    if (r.seconds >= 0.0) latencies.push_back(r.seconds);
  }
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    out.p50 = latencies[latencies.size() / 2];
    out.p99 = latencies[(latencies.size() * 99) / 100];
  }
  return out;
}

// Bit-identical pairs and identical per-query disk accesses: the
// executors must do the same work in a different order, nothing else.
bool SameWork(const BatchOutcome& a, const BatchOutcome& b) {
  if (a.results.size() != b.results.size()) return false;
  for (size_t i = 0; i < a.results.size(); ++i) {
    const BatchQueryResult& ra = a.results[i];
    const BatchQueryResult& rb = b.results[i];
    if (ra.stats.disk_accesses() != rb.stats.disk_accesses()) return false;
    if (ra.pairs.size() != rb.pairs.size()) return false;
    for (size_t j = 0; j < ra.pairs.size(); ++j) {
      if (ra.pairs[j].distance != rb.pairs[j].distance) return false;
      if (ra.pairs[j].p_id != rb.pairs[j].p_id) return false;
      if (ra.pairs[j].q_id != rb.pairs[j].q_id) return false;
    }
  }
  return true;
}

void Main() {
  PrintFigureHeader("Resumable",
                    "concurrent K-CPQ throughput: blocking thread pool vs "
                    "completion-driven resumable scheduler");
  std::printf(
      "uniform %zu x %zu, %zu queries (K in {1, 10, 100}), %zu workers, "
      "read latency %lld us, zero-capacity buffers\n",
      Scaled(kTreeSize), Scaled(kTreeSize), kQueries, kWorkers,
      static_cast<long long>(kLatency.count()));
  BenchJson json("resumable");
  auto store_p = MakeStore(DataKind::kUniform, Scaled(kTreeSize), 1.0, 31);
  auto store_q = MakeStore(DataKind::kUniform, Scaled(kTreeSize), 1.0, 32);

  const BatchOutcome blocking =
      RunBatch(*store_p, *store_q, SchedulerMode::kBlocking);
  const BatchOutcome resumable =
      RunBatch(*store_p, *store_q, SchedulerMode::kResumable);

  const double speedup = blocking.makespan / resumable.makespan;
  Table table({"scheduler", "makespan s", "queries/s", "p50 ms", "p99 ms",
               "disk accesses"});
  const auto add = [&](const char* name, const BatchOutcome& o) {
    table.AddRow({name, Table::Num(o.makespan, 3),
                  Table::Num(static_cast<double>(kQueries) / o.makespan, 1),
                  Table::Num(o.p50 * 1e3, 1), Table::Num(o.p99 * 1e3, 1),
                  Table::Count(static_cast<long long>(o.disk_accesses))});
  };
  add("blocking", blocking);
  add("resumable", resumable);
  table.Print(stdout);
  json.AddTable("schedulers", table);

  const bool identical = SameWork(blocking, resumable);
  std::printf("\nthroughput speedup (resumable / blocking): %.2fx\n",
              speedup);
  std::printf(
      "identical pairs and per-query disk accesses: %s (multiplexing must "
      "not perturb results or the paper metric)\n",
      identical ? "yes" : "NO — BUG");
  std::printf("Expectation: >= 3x at full scale with 64+ in-flight.\n");
  json.AddScalar("speedup", speedup);
  json.AddScalar("throughput_blocking_qps",
                 static_cast<double>(kQueries) / blocking.makespan);
  json.AddScalar("throughput_resumable_qps",
                 static_cast<double>(kQueries) / resumable.makespan);
  json.AddScalar("p99_blocking_ms", blocking.p99 * 1e3);
  json.AddScalar("p99_resumable_ms", resumable.p99 * 1e3);
  json.AddScalar("identical_results", identical ? 1.0 : 0.0);
  json.Write();

  if (!identical) std::exit(1);
  if (const char* gate = std::getenv("RESUMABLE_MIN_SPEEDUP")) {
    const double min_speedup = std::atof(gate);
    if (speedup < min_speedup) {
      std::fprintf(stderr,
                   "FAIL: speedup %.2fx below RESUMABLE_MIN_SPEEDUP=%s\n",
                   speedup, gate);
      std::exit(1);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() {
  // Enough I/O-pool workers to overlap the whole batch's parked reads;
  // must be set before the first async read constructs the shared pool.
  setenv("KCPQ_IO_THREADS", "64", /*overwrite=*/0);
  kcpq::bench::Main();
}
