// Figure 7: K-CPQ performance of the four algorithms for K = 1..100,000.
// Real (Sequoia-like) vs uniform data of the same cardinality (62,536),
// overlap 0% (panel a) and 100% (panel b), no buffer.

#include <cstdio>

#include "bench/bench_util.h"

namespace kcpq {
namespace bench {
namespace {

constexpr size_t kKs[] = {1, 10, 100, 1000, 10000, 100000};

void RunPanel(const char* panel, double overlap, TreeStore& real_store) {
  std::printf("\nFigure 7%s: %.0f%% overlapping workspaces, disk accesses\n",
              panel, overlap * 100);
  auto store_q = MakeStore(DataKind::kUniform, Scaled(kSequoiaCardinality),
                           overlap, 2006);
  Table table({"K", "EXH", "SIM", "STD", "HEAP"});
  for (const size_t k : kKs) {
    std::vector<std::string> row = {Table::Count(k)};
    for (const CpqAlgorithm algorithm :
         {CpqAlgorithm::kExhaustive, CpqAlgorithm::kSimple,
          CpqAlgorithm::kSortedDistances, CpqAlgorithm::kHeap}) {
      CpqOptions options;
      options.algorithm = algorithm;
      options.k = k;
      row.push_back(Table::Count(
          RunCpq(real_store, *store_q, options, 0).stats.disk_accesses()));
    }
    table.AddRow(std::move(row));
  }
  table.Print(stdout);
}

void Main() {
  PrintFigureHeader("Figure 7",
                    "K-CPQ for varying K; real vs uniform 62,536 points, no "
                    "buffer");
  auto real_store =
      MakeStore(DataKind::kSequoiaLike, Scaled(kSequoiaCardinality), 1.0, 77);
  RunPanel("a", 0.0, *real_store);
  RunPanel("b", 1.0, *real_store);
  std::printf(
      "\nPaper expectation: cost grows slowly with K, then exponentially "
      "after a threshold around K = 100..1000; at 0%% overlap STD/HEAP are "
      "10-50x faster than EXH; at 100%% overlap only HEAP clearly beats EXH "
      "(10-30%%).\n");
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() { kcpq::bench::Main(); }
