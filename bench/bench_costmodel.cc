// Analytical cost model vs measured disk accesses (the paper's future-work
// "analytical study of CPQs"). Uniform data, HEAP algorithm, no buffer.
// Two sweeps: overlap at fixed cardinality, and K at fixed overlap.

#include <cstdio>

#include "bench/bench_util.h"
#include "cpq/cost_model.h"

namespace kcpq {
namespace bench {
namespace {

void Main() {
  PrintFigureHeader("Cost model",
                    "Analytical estimate vs measured disk accesses "
                    "(uniform data, HEAP, no buffer)");
  const size_t n = Scaled(40000);

  std::printf("\nOverlap sweep (n = %zu x %zu, K = 1):\n", n, n);
  {
    auto store_p = MakeStore(DataKind::kUniform, n, 1.0, 4001);
    Table table({"overlap", "measured", "model", "model/measured"});
    for (const double overlap : {0.0, 0.03, 0.12, 0.25, 0.50, 1.0}) {
      auto store_q = MakeStore(DataKind::kUniform, n, overlap, 4002);
      CpqOptions options;
      options.algorithm = CpqAlgorithm::kHeap;
      const uint64_t measured =
          RunCpq(*store_p, *store_q, options, 0).stats.disk_accesses();
      CostModelInput input;
      input.n_p = n;
      input.n_q = n;
      input.overlap = overlap;
      const double model =
          EstimateCpqCost(input).value().disk_accesses;
      table.AddRow({Table::Percent(overlap), Table::Count(measured),
                    Table::Num(model, 0),
                    Table::Num(model / (measured > 0 ? measured : 1), 2)});
    }
    table.Print(stdout);
  }

  std::printf("\nK sweep (n = %zu x %zu, overlap = 100%%):\n", n, n);
  {
    auto store_p = MakeStore(DataKind::kUniform, n, 1.0, 4003);
    auto store_q = MakeStore(DataKind::kUniform, n, 1.0, 4004);
    Table table({"K", "measured", "model", "model/measured"});
    for (const uint64_t k : {1, 10, 100, 1000, 10000}) {
      CpqOptions options;
      options.algorithm = CpqAlgorithm::kHeap;
      options.k = k;
      const uint64_t measured =
          RunCpq(*store_p, *store_q, options, 0).stats.disk_accesses();
      CostModelInput input;
      input.n_p = n;
      input.n_q = n;
      input.k = k;
      const double model = EstimateCpqCost(input).value().disk_accesses;
      table.AddRow({Table::Count(k), Table::Count(measured),
                    Table::Num(model, 0),
                    Table::Num(model / (measured > 0 ? measured : 1), 2)});
    }
    table.Print(stdout);
  }
  std::printf(
      "\nThe model is a coarse uniformity-based estimate intended for plan "
      "choice: rankings must match; absolute ratios within ~3x.\n");
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() { kcpq::bench::Main(); }
