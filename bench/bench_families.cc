// Objective families: closest vs farthest vs rect-restricted closest
// pairs over the same data. Not a figure of the paper — it characterises
// the QueryObjective policy layer (cpq/objective.h): how the traversal
// cost shifts when the same HEAP driver runs with a different key space.
//
// Expectations worth watching: farthest converges in very few node pairs
// (the MAXMAXDIST of the root candidates already separates the extremes,
// and every leaf scan is a nested loop since the plane sweep is
// minimizing-only); rcp does closest-style work but skips every subtree
// whose MBR misses the query rect before it is ever considered.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "cpq/objective.h"

namespace kcpq {
namespace bench {
namespace {

constexpr size_t kCardinality = 100000;
constexpr size_t kBufferPages = 64;
constexpr size_t kKs[] = {1, 10, 100};

// Central window covering ~16% of the unit workspace: small enough that
// rect skipping visibly cuts the traversal, large enough to hold the
// true closest pairs of a uniform set with high probability.
Rect QueryWindow() {
  Rect rect;
  rect.lo[0] = 0.3;
  rect.lo[1] = 0.3;
  rect.hi[0] = 0.7;
  rect.hi[1] = 0.7;
  return rect;
}

void Main() {
  PrintFigureHeader(
      "Families",
      "Objective policies: closest vs farthest vs rcp (HEAP, uniform "
      "100K x 100K)");
  BenchJson json("families");

  auto store_p = MakeStore(DataKind::kUniform, Scaled(kCardinality), 1.0, 81);
  auto store_q = MakeStore(DataKind::kUniform, Scaled(kCardinality), 1.0, 82);

  struct FamilyCase {
    QueryFamily family;
    const char* label;
  };
  const FamilyCase kCases[] = {
      {QueryFamily::kClosest, "closest"},
      {QueryFamily::kFarthest, "farthest"},
      {QueryFamily::kRangeClosest, "rcp"},
  };

  Table table({"family", "k", "disk_accesses", "node_accesses",
               "node_pairs", "dist_comps", "leaf_skipped", "kth_distance",
               "seconds"});
  for (const FamilyCase& fc : kCases) {
    for (const size_t k : kKs) {
      CpqOptions options;
      options.algorithm = CpqAlgorithm::kHeap;
      options.k = k;
      options.family = fc.family;
      if (fc.family == QueryFamily::kRangeClosest) {
        options.query_rect = QueryWindow();
      }
      const QueryOutcome outcome =
          RunCpq(*store_p, *store_q, options, kBufferPages);
      table.AddRow(
          {fc.label, Table::Count(static_cast<long long>(k)),
           Table::Count(
               static_cast<long long>(outcome.stats.disk_accesses())),
           Table::Count(static_cast<long long>(outcome.stats.node_accesses)),
           Table::Count(
               static_cast<long long>(outcome.stats.node_pairs_processed)),
           Table::Count(static_cast<long long>(
               outcome.stats.point_distance_computations)),
           Table::Count(
               static_cast<long long>(outcome.stats.leaf_pairs_skipped)),
           Table::Num(outcome.result_distance, 6),
           Table::Num(outcome.seconds, 4)});
      json.AddScalar(std::string(fc.label) + "_k" + std::to_string(k) +
                         "_disk_accesses",
                     static_cast<double>(outcome.stats.disk_accesses()));
    }
  }
  table.Print(stdout);
  json.AddTable("families", table);

  std::printf(
      "\nExpectation: farthest needs the fewest node pairs (extreme MBR "
      "corners separate early) but zero sweep skips (nested-loop leaves); "
      "rcp tracks closest but with subtrees outside the rect never "
      "considered. All three share the HEAP driver; only the "
      "QueryObjective differs.\n");
  json.Write();
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() { kcpq::bench::Main(); }
