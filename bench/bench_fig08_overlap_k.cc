// Figure 8: the overlap x K surface — relative cost of (a) STD and
// (b) HEAP with respect to EXH for overlap 0..100% and K = 1..100,000.
// Real (Sequoia-like) vs uniform 62,536 points, no buffer.

#include <cstdio>
#include <map>

#include "bench/bench_util.h"

namespace kcpq {
namespace bench {
namespace {

constexpr size_t kKs[] = {1, 10, 100, 1000, 10000, 100000};
constexpr double kOverlaps[] = {0.0, 0.03, 0.06, 0.12, 0.25, 0.50, 1.0};

void Main() {
  PrintFigureHeader("Figure 8",
                    "Overlap x K surface: STD and HEAP cost relative to "
                    "EXH; R vs uniform 62,536, no buffer");
  auto real_store =
      MakeStore(DataKind::kSequoiaLike, Scaled(kSequoiaCardinality), 1.0, 77);

  // One pass over the grid measuring all three algorithms; two tables out.
  std::map<std::pair<int, size_t>, double> rel_std, rel_heap;
  for (size_t oi = 0; oi < std::size(kOverlaps); ++oi) {
    auto store_q = MakeStore(DataKind::kUniform, Scaled(kSequoiaCardinality),
                             kOverlaps[oi], 2007);
    for (const size_t k : kKs) {
      uint64_t exh = 0, std_cost = 0, heap_cost = 0;
      for (const CpqAlgorithm algorithm :
           {CpqAlgorithm::kExhaustive, CpqAlgorithm::kSortedDistances,
            CpqAlgorithm::kHeap}) {
        CpqOptions options;
        options.algorithm = algorithm;
        options.k = k;
        const uint64_t accesses =
            RunCpq(*real_store, *store_q, options, 0).stats.disk_accesses();
        switch (algorithm) {
          case CpqAlgorithm::kExhaustive:
            exh = accesses;
            break;
          case CpqAlgorithm::kSortedDistances:
            std_cost = accesses;
            break;
          default:
            heap_cost = accesses;
        }
      }
      const double denom = exh > 0 ? static_cast<double>(exh) : 1.0;
      rel_std[{static_cast<int>(oi), k}] = std_cost / denom;
      rel_heap[{static_cast<int>(oi), k}] = heap_cost / denom;
    }
  }

  const auto print_surface =
      [&](const char* panel, const char* name,
          const std::map<std::pair<int, size_t>, double>& rel) {
        std::printf("\nFigure 8%s: %s relative to EXH (rows: overlap; "
                    "columns: K)\n",
                    panel, name);
        Table table({"overlap", "K=1", "K=10", "K=100", "K=1000", "K=10000",
                     "K=100000"});
        for (size_t oi = 0; oi < std::size(kOverlaps); ++oi) {
          std::vector<std::string> row = {Table::Percent(kOverlaps[oi])};
          for (const size_t k : kKs) {
            row.push_back(Table::Percent(rel.at({static_cast<int>(oi), k})));
          }
          table.AddRow(std::move(row));
        }
        table.Print(stdout);
      };
  print_surface("a", "STD", rel_std);
  print_surface("b", "HEAP", rel_heap);
  std::printf(
      "\nPaper expectation: STD and HEAP nearly equivalent (5-50x faster "
      "than EXH) below ~10%% overlap; above ~50%% overlap HEAP keeps a "
      "15-35%% edge that grows with K while STD converges toward EXH.\n");
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() { kcpq::bench::Main(); }
