// Shared infrastructure for the per-figure benchmark harnesses.
//
// Each harness reproduces one figure of the paper's evaluation (Sections 4
// and 5): it builds the figure's data sets, runs the queries, and prints
// the same rows/series the paper plots (disk accesses, or cost relative to
// a baseline). Experiment configuration matches Section 4: 1 KiB pages
// (M = 21, m = 7), trees built by one-by-one R* insertion, cost = R-tree
// node disk accesses during the query only.
//
// Set REPRO_SCALE (e.g. 0.1) to shrink every data set for a quick smoke
// run; the paper's shapes are stable under scaling.

#ifndef KCPQ_BENCH_BENCH_UTIL_H_
#define KCPQ_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "buffer/buffer_manager.h"
#include "common/table.h"
#include "common/timer.h"
#include "cpq/cpq.h"
#include "datagen/datagen.h"
#include "hs/hs.h"
#include "rtree/rtree.h"
#include "storage/memory_storage.h"

namespace kcpq {
namespace bench {

/// REPRO_SCALE environment variable; 1.0 when unset.
double ReproScale();

/// n scaled by REPRO_SCALE (at least 16).
size_t Scaled(size_t n);

enum class DataKind { kUniform, kSequoiaLike };

/// One data set built into one simulated disk. Construction inserts the
/// points one by one through an unbuffered path (construction cost is not
/// part of any experiment); OpenView then attaches a fresh buffer of any
/// capacity for a measured query run.
class TreeStore {
 public:
  TreeStore(DataKind kind, size_t n, const Rect& workspace, uint64_t seed,
            const RTreeOptions& options = RTreeOptions());

  /// A queryable view: its own buffer (cold) over the shared storage.
  struct View {
    std::unique_ptr<BufferManager> buffer;
    std::unique_ptr<RStarTree> tree;
  };
  /// `buffer_pages` is the per-tree share (the paper's B/2).
  View OpenView(size_t buffer_pages);

  size_t size() const { return size_; }
  int height() const { return height_; }

 private:
  MemoryStorageManager storage_;
  PageId meta_ = kInvalidPageId;
  size_t size_ = 0;
  int height_ = 0;
};

/// Builds the paper's standard data sets (unit workspace; Q data shifted to
/// the requested overlap fraction).
std::unique_ptr<TreeStore> MakeStore(DataKind kind, size_t n, double overlap,
                                     uint64_t seed);

/// One measured query: opens cold views with `buffer_pages_total / 2` per
/// tree, runs KClosestPairs, returns the stats (disk accesses of the query
/// only).
struct QueryOutcome {
  CpqStats stats;
  double seconds = 0.0;
  double result_distance = 0.0;  // distance of the K-th (last) pair
};
QueryOutcome RunCpq(TreeStore& p, TreeStore& q, const CpqOptions& options,
                    size_t buffer_pages_total);

/// Like RunCpq, for the Hjaltason-Samet incremental join retrieving k
/// pairs.
struct HsOutcome {
  HsStats stats;
  double seconds = 0.0;
};
HsOutcome RunHs(TreeStore& p, TreeStore& q, size_t k, const HsOptions& options,
                size_t buffer_pages_total);

/// Prints the standard header for a figure harness.
void PrintFigureHeader(const std::string& figure,
                       const std::string& description);

}  // namespace bench
}  // namespace kcpq

#endif  // KCPQ_BENCH_BENCH_UTIL_H_
