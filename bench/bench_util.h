// Shared infrastructure for the per-figure benchmark harnesses.
//
// Each harness reproduces one figure of the paper's evaluation (Sections 4
// and 5): it builds the figure's data sets, runs the queries, and prints
// the same rows/series the paper plots (disk accesses, or cost relative to
// a baseline). Experiment configuration matches Section 4: 1 KiB pages
// (M = 21, m = 7), trees built by one-by-one R* insertion, cost = R-tree
// node disk accesses during the query only.
//
// Set REPRO_SCALE (e.g. 0.1) to shrink every data set for a quick smoke
// run; the paper's shapes are stable under scaling.

#ifndef KCPQ_BENCH_BENCH_UTIL_H_
#define KCPQ_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "buffer/buffer_manager.h"
#include "common/table.h"
#include "common/timer.h"
#include "cpq/cpq.h"
#include "datagen/datagen.h"
#include "hs/hs.h"
#include "obs/metrics_registry.h"
#include "rtree/rtree.h"
#include "storage/memory_storage.h"

namespace kcpq {
namespace bench {

/// REPRO_SCALE environment variable; 1.0 when unset.
double ReproScale();

/// n scaled by REPRO_SCALE (at least 16).
size_t Scaled(size_t n);

enum class DataKind { kUniform, kSequoiaLike };

/// One data set built into one simulated disk. Construction inserts the
/// points one by one through an unbuffered path (construction cost is not
/// part of any experiment); OpenView then attaches a fresh buffer of any
/// capacity for a measured query run.
class TreeStore {
 public:
  TreeStore(DataKind kind, size_t n, const Rect& workspace, uint64_t seed,
            const RTreeOptions& options = RTreeOptions());

  /// A queryable view: its own buffer (cold) over the shared storage.
  struct View {
    /// Optional latency-injecting wrapper; declared before the buffer so
    /// the buffer's destructor (which flushes through it) runs first.
    std::unique_ptr<StorageManager> slow_storage;
    std::unique_ptr<BufferManager> buffer;
    std::unique_ptr<RStarTree> tree;
  };
  /// `buffer_pages` is the per-tree share (the paper's B/2).
  View OpenView(size_t buffer_pages);

  /// View for concurrent query runs: a buffer with `shards` shard locks,
  /// optionally over a simulated disk that sleeps `read_latency` per
  /// physical page read (storage/latency_storage.h). Zero latency reads at
  /// memory speed.
  View OpenParallelView(size_t buffer_pages, size_t shards,
                        std::chrono::microseconds read_latency =
                            std::chrono::microseconds(0));

  size_t size() const { return size_; }
  int height() const { return height_; }

 private:
  MemoryStorageManager storage_;
  PageId meta_ = kInvalidPageId;
  size_t size_ = 0;
  int height_ = 0;
};

/// Builds the paper's standard data sets (unit workspace; Q data shifted to
/// the requested overlap fraction).
std::unique_ptr<TreeStore> MakeStore(DataKind kind, size_t n, double overlap,
                                     uint64_t seed);

/// One measured query: opens cold views with `buffer_pages_total / 2` per
/// tree, runs KClosestPairs, returns the stats (disk accesses of the query
/// only).
struct QueryOutcome {
  CpqStats stats;
  double seconds = 0.0;
  double result_distance = 0.0;  // distance of the K-th (last) pair
};
QueryOutcome RunCpq(TreeStore& p, TreeStore& q, const CpqOptions& options,
                    size_t buffer_pages_total);

/// Like RunCpq, for the Hjaltason-Samet incremental join retrieving k
/// pairs.
struct HsOutcome {
  HsStats stats;
  double seconds = 0.0;
};
HsOutcome RunHs(TreeStore& p, TreeStore& q, size_t k, const HsOptions& options,
                size_t buffer_pages_total);

/// Prints the standard header for a figure harness.
void PrintFigureHeader(const std::string& figure,
                       const std::string& description);

/// Current metrics-registry snapshot (obs/metrics_registry.h). Capture
/// one before and one after a measured region and subtract with
/// obs::MetricsSnapshot::Delta to attribute process-global counters to
/// that region.
obs::MetricsSnapshot CaptureMetrics();

/// Machine-readable record of a bench run, so successive changes can track
/// the performance trajectory. Collects named scalars and tables and
/// writes them as `BENCH_<name>.json` (current directory, or $BENCH_DIR
/// when set). Table cells that parse as numbers are emitted as JSON
/// numbers; everything else stays a string.
///
/// Construction snapshots the metrics registry; Write() embeds the
/// registry delta over the bench's lifetime as a `"metrics"` section, so
/// every BENCH_*.json carries the unified counters (buffer hit/miss,
/// candidate pruning, retries, ...) without hand-copied struct fields.
class BenchJson {
 public:
  explicit BenchJson(std::string name)
      : name_(std::move(name)), metrics_baseline_(CaptureMetrics()) {}

  void AddScalar(const std::string& key, double value);
  void AddTable(const std::string& key, const Table& table);

  /// Summarizes a registry histogram's activity since this BenchJson was
  /// constructed as scalars: `<key>_count`, `<key>_mean`, `<key>_p50`,
  /// `<key>_p99` (quantiles linearly interpolated within the winning
  /// bucket, so precision is the bucket width; the +inf bucket reports
  /// the last finite bound). No-op when the metric is absent or saw no
  /// observations — a bench with the exporter off emits no stray zeros.
  void AddHistogramStats(const std::string& key,
                         const std::string& metric_name);

  /// Writes the file and prints its path; failures are reported to stderr
  /// (a bench's numbers on stdout are never lost to a JSON I/O error).
  void Write() const;

 private:
  std::string name_;
  obs::MetricsSnapshot metrics_baseline_;
  std::vector<std::pair<std::string, double>> scalars_;
  std::vector<std::pair<std::string, Table>> tables_;
};

}  // namespace bench
}  // namespace kcpq

#endif  // KCPQ_BENCH_BENCH_UTIL_H_
