// Anytime behaviour: result quality as a function of the node-access
// budget. Not a figure of the paper — it characterises the lifecycle
// control layer (common/query_control.h): how fast the partial result of a
// budget-stopped K-CPQ converges to the exact answer, and how tight the
// certified lower bound is along the way.
//
// For each budget the harness runs STD and HEAP at K = 100 and reports
// recall against the unbudgeted run, the certified guaranteed_lower_bound,
// and whether the stop was provably harmless (is_exact).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace kcpq {
namespace bench {
namespace {

constexpr size_t kK = 100;
constexpr size_t kBufferPages = 64;
constexpr uint64_t kBudgets[] = {10,   30,    100,   300, 1000,
                                 3000, 10000, 30000, 0};  // 0 = unlimited

struct Run {
  std::vector<PairResult> pairs;
  CpqStats stats;
};

Run RunBudgeted(TreeStore& p, TreeStore& q, const CpqOptions& options) {
  TreeStore::View vp = p.OpenView(kBufferPages / 2);
  TreeStore::View vq = q.OpenView(kBufferPages / 2);
  Run run;
  auto result = KClosestPairs(*vp.tree, *vq.tree, options, &run.stats);
  KCPQ_CHECK_OK(result.status());
  run.pairs = std::move(result).value();
  return run;
}

/// Fraction of the true top-K recovered: pairs of the partial result at or
/// below the true K-th distance (the partial pairs are genuine, so each
/// such pair is a member of some true top-K set).
double Recall(const Run& partial, double kth_distance) {
  size_t hits = 0;
  for (const PairResult& pr : partial.pairs) {
    if (pr.distance <= kth_distance + 1e-12) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(kK);
}

void Main() {
  PrintFigureHeader(
      "Anytime",
      "Partial-result quality vs node-access budget (STD and HEAP, K=100)");
  BenchJson json("anytime");

  auto store_p =
      MakeStore(DataKind::kSequoiaLike, Scaled(kSequoiaCardinality), 1.0, 77);
  auto store_q = MakeStore(DataKind::kUniform, Scaled(40000), 0.1, 2005);

  for (const CpqAlgorithm algorithm :
       {CpqAlgorithm::kSortedDistances, CpqAlgorithm::kHeap}) {
    CpqOptions base;
    base.algorithm = algorithm;
    base.k = kK;

    // The reference: same configuration, no budget.
    const Run full = RunBudgeted(*store_p, *store_q, base);
    const double kth = full.pairs.back().distance;
    std::printf("\n%s: full run %llu node accesses, K-th distance %.6g\n",
                CpqAlgorithmName(algorithm),
                static_cast<unsigned long long>(full.stats.node_accesses),
                kth);
    json.AddScalar(
        std::string(CpqAlgorithmName(algorithm)) + "_full_node_accesses",
        static_cast<double>(full.stats.node_accesses));

    // glb_mid / glb_last sample the per-rank certificate
    // (QueryQuality::rank_lower_bounds) at ranks K/2 and K-1: how much
    // more the capacity-weighted profile certifies for deep ranks than
    // the scalar bound (= rank 0) does.
    Table table({"budget", "node_accesses", "pairs", "recall", "glb",
                 "glb_mid", "glb_last", "exact", "stop"});
    for (const uint64_t budget : kBudgets) {
      CpqOptions options = base;
      options.control.max_node_accesses = budget;
      const Run run = RunBudgeted(*store_p, *store_q, options);
      const QueryQuality& quality = run.stats.quality;
      const std::vector<double>& bounds = quality.rank_lower_bounds;
      const double mid = bounds.empty() ? quality.guaranteed_lower_bound
                                        : bounds[bounds.size() / 2];
      const double last = bounds.empty() ? quality.guaranteed_lower_bound
                                         : bounds.back();
      table.AddRow(
          {budget == 0 ? "inf" : Table::Count(static_cast<long long>(budget)),
           Table::Count(static_cast<long long>(run.stats.node_accesses)),
           Table::Count(static_cast<long long>(quality.pairs_found)),
           Table::Num(Recall(run, kth), 3),
           Table::Num(quality.guaranteed_lower_bound, 6),
           Table::Num(mid, 6), Table::Num(last, 6),
           quality.is_exact ? "yes" : "no",
           StopCauseName(quality.stop_cause)});
    }
    table.Print(stdout);
    json.AddTable(CpqAlgorithmName(algorithm), table);
  }

  std::printf(
      "\nExpectation: recall climbs steeply with the budget (the best-first "
      "traversals find the close pairs early); the certified bound tightens "
      "toward the true K-th distance, and is_exact flips once the frontier "
      "can no longer beat the K-heap. glb_mid/glb_last >= glb whenever the "
      "stopped frontier's closest entries cover fewer than K pairs.\n");
  json.Write();
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() { kcpq::bench::Main(); }
