// Admission control characterisation: rejection rate vs memory pool size.
//
// Not a figure of the paper — it characterises the cost-model admission
// controller (src/exec/admission.h) layered on the batch engine. A mixed
// batch (small and large K, all four bounding algorithms) runs against a
// sweep of memory pool sizes in enforce mode; for each pool size the
// harness reports how many queries were shed, the aggregate reservation
// pressure, and that shed queries performed zero storage I/O. The same
// sweep in advisory mode shows the would-reject counter tracking the
// enforce-mode shed rate — the tuning workflow: size the pool in advisory
// until the flagged rate is acceptable, then flip to enforce.
//
// Results land in BENCH_admission.json (rejection-rate-vs-pool-size
// curve) for machine consumption.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "exec/batch.h"

namespace kcpq {
namespace bench {
namespace {

constexpr size_t kTreeSize = 20000;
constexpr size_t kBufferPages = 64;
constexpr size_t kThreads = 4;

std::vector<BatchQuery> MakeMixedBatch() {
  std::vector<BatchQuery> batch;
  constexpr CpqAlgorithm kAlgorithms[] = {
      CpqAlgorithm::kExhaustive, CpqAlgorithm::kSimple,
      CpqAlgorithm::kSortedDistances, CpqAlgorithm::kHeap};
  constexpr size_t kKs[] = {1, 10, 100, 1000, 10000};
  for (const size_t k : kKs) {
    for (const CpqAlgorithm algorithm : kAlgorithms) {
      BatchQuery query;
      query.options.algorithm = algorithm;
      query.options.k = k;
      batch.push_back(query);
    }
  }
  return batch;
}

void Main() {
  PrintFigureHeader("Admission",
                    "Rejection rate vs memory pool size (enforce mode)");
  BenchJson json("admission");

  auto store_p = MakeStore(DataKind::kUniform, Scaled(kTreeSize), 1.0, 501);
  auto store_q =
      MakeStore(DataKind::kSequoiaLike, Scaled(kTreeSize), 1.0, 502);
  const std::vector<BatchQuery> batch = MakeMixedBatch();

  // Pool sweep: from "rejects everything" to "admits everything". The
  // interesting region is around the per-query estimates, which scale
  // with the tree sizes; express the sweep in pages of the shared page
  // size so REPRO_SCALE moves the curve, not the harness.
  TreeStore::View probe_p = store_p->OpenView(kBufferPages / 2);
  const uint64_t page = probe_p.buffer->storage()->page_size();
  const std::vector<uint64_t> pool_pages = {1,    16,    64,    256,  1024,
                                            4096, 16384, 65536, 262144};

  Table table({"pool_pages", "pool_bytes", "admitted", "rejected",
               "reject_rate", "would_reject(advisory)", "storage_reads"});
  for (const uint64_t pages : pool_pages) {
    const uint64_t pool_bytes = pages * page;

    // Enforce run on fresh cold views.
    TreeStore::View vp = store_p->OpenParallelView(kBufferPages / 2, 16);
    TreeStore::View vq = store_q->OpenParallelView(kBufferPages / 2, 16);
    BatchOptions options;
    options.threads = kThreads;
    options.admission.mode = AdmissionMode::kEnforce;
    options.admission.memory_pool_bytes = pool_bytes;
    BatchStats stats;
    const std::vector<BatchQueryResult> results =
        BatchKClosestPairs(*vp.tree, *vq.tree, batch, options, &stats);
    uint64_t rejected_reads = 0;
    for (const BatchQueryResult& r : results) {
      if (r.outcome == kcpq::QueryOutcome::kRejected) {
        rejected_reads += r.stats.node_accesses;
      }
    }
    if (rejected_reads != 0) {
      std::fprintf(stderr, "FATAL: a rejected query performed I/O\n");
      std::abort();
    }

    // Advisory run: same pool, every query runs, the flag rate must
    // match what enforce shed.
    BatchOptions advisory = options;
    advisory.admission.mode = AdmissionMode::kAdvisory;
    BatchStats advisory_stats;
    TreeStore::View ap = store_p->OpenParallelView(kBufferPages / 2, 16);
    TreeStore::View aq = store_q->OpenParallelView(kBufferPages / 2, 16);
    BatchKClosestPairs(*ap.tree, *aq.tree, batch, advisory, &advisory_stats);

    const double rate =
        static_cast<double>(stats.rejected) / static_cast<double>(batch.size());
    table.AddRow({Table::Count(static_cast<long long>(pages)),
                  Table::Count(static_cast<long long>(pool_bytes)),
                  Table::Count(static_cast<long long>(stats.ok +
                                                      stats.partial)),
                  Table::Count(static_cast<long long>(stats.rejected)),
                  Table::Num(rate, 3),
                  Table::Count(static_cast<long long>(
                      advisory_stats.admission_would_reject)),
                  Table::Count(static_cast<long long>(rejected_reads))});
  }
  table.Print(stdout);
  json.AddTable("rejection_vs_pool", table);

  std::printf(
      "\nExpectation: the rejection rate falls monotonically from 1.0 to "
      "0.0 as the pool grows past the cost-model estimates of the largest "
      "queries; advisory would-reject tracks the enforce shed count at "
      "every pool size; shed queries never read a page.\n");
  json.Write();
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() { kcpq::bench::Main(); }
