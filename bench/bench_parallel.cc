// Parallel batch query engine + plane-sweep leaf kernel benchmark.
//
// Not a figure of the paper — this harness measures the two engine
// additions layered on top of the reproduction:
//
//   Part A  Leaf kernel ablation. Uniform 100K x 100K, K = 100: the
//           plane-sweep kernel vs the nested loop, counting point distance
//           computations. The sweep must compute strictly fewer.
//
//   Part B  Batch throughput scaling. A batch of independent K-CPQ
//           queries over shared trees (sharded buffers) at 1/2/4/8
//           worker threads, in two storage modes:
//             mem       in-memory pages, cost is pure CPU
//             disk-sim  every physical page read sleeps (simulated disk,
//                       storage/latency_storage.h); batching wins by
//                       overlapping I/O waits, independent of core count
//
// Results also land in BENCH_parallel.json for machine consumption.

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "exec/batch.h"

namespace kcpq {
namespace bench {
namespace {

// Part B shape: trees of kBatchTreeSize points each; the batch runs
// kBatchQueries queries (k and algorithm vary per query) against buffers
// of kBatchBufferPages per tree — far smaller than the trees, so physical
// reads persist across the batch and disk-sim latency stays on the
// critical path.
constexpr size_t kBatchTreeSize = 20000;
constexpr size_t kBatchQueries = 32;
constexpr size_t kBatchBufferPages = 64;
constexpr size_t kBatchShards = 64;
constexpr std::chrono::microseconds kDiskReadLatency{200};

void PartAKernelAblation(BenchJson* json) {
  std::printf("\nPart A: leaf kernel ablation — uniform %zu x %zu, K = 100\n",
              Scaled(100000), Scaled(100000));
  auto store_p = MakeStore(DataKind::kUniform, Scaled(100000), 1.0, 42);
  auto store_q = MakeStore(DataKind::kUniform, Scaled(100000), 1.0, 43);

  Table table({"algorithm", "kernel", "dist computations", "pairs skipped",
               "node pairs", "seconds"});
  uint64_t pdc_nested = 0;
  uint64_t pdc_sweep = 0;
  for (const CpqAlgorithm algorithm :
       {CpqAlgorithm::kSortedDistances, CpqAlgorithm::kHeap}) {
    for (const LeafKernel kernel :
         {LeafKernel::kNestedLoop, LeafKernel::kPlaneSweep}) {
      CpqOptions options;
      options.algorithm = algorithm;
      options.k = 100;
      options.leaf_kernel = kernel;
      // Counters come from the unified metrics registry (delta across the
      // run) rather than hand-copied CpqStats fields.
      const obs::MetricsSnapshot before = CaptureMetrics();
      const QueryOutcome outcome = RunCpq(*store_p, *store_q, options, 512);
      const obs::MetricsSnapshot delta =
          obs::MetricsSnapshot::Delta(before, CaptureMetrics());
      const uint64_t pdc =
          delta.CounterValue("kcpq_cpq_distance_computations_total");
      table.AddRow(
          {CpqAlgorithmName(algorithm), LeafKernelName(kernel),
           Table::Count(pdc),
           Table::Count(delta.CounterValue("kcpq_cpq_leaf_pairs_skipped_total")),
           Table::Count(delta.CounterValue("kcpq_cpq_node_pairs_total")),
           Table::Num(outcome.seconds, 3)});
      if (kernel == LeafKernel::kNestedLoop) {
        pdc_nested += pdc;
      } else {
        pdc_sweep += pdc;
      }
    }
  }
  table.Print(stdout);
  const double reduction =
      pdc_nested > 0 ? 1.0 - static_cast<double>(pdc_sweep) /
                                 static_cast<double>(pdc_nested)
                     : 0.0;
  std::printf("sweep computes %.1f%% fewer point distances than nested loop\n",
              reduction * 100);
  json->AddScalar("pdc_nested", static_cast<double>(pdc_nested));
  json->AddScalar("pdc_sweep", static_cast<double>(pdc_sweep));
  json->AddScalar("pdc_reduction", reduction);
  json->AddTable("kernel_ablation", table);
}

std::vector<BatchQuery> MakeBatch() {
  std::vector<BatchQuery> batch(kBatchQueries);
  // Independent queries of unequal cost, as a CPQ server would see: k and
  // algorithm vary per query.
  constexpr size_t kKs[] = {1, 10, 100, 1000};
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].options.k = kKs[i % 4];
    batch[i].options.algorithm =
        (i % 2 == 0) ? CpqAlgorithm::kHeap : CpqAlgorithm::kSortedDistances;
  }
  return batch;
}

// One timed batch run: cold sharded views, `threads` workers. Returns
// queries/second.
double RunBatch(TreeStore& p, TreeStore& q,
                const std::vector<BatchQuery>& batch, size_t threads,
                std::chrono::microseconds read_latency) {
  TreeStore::View vp =
      p.OpenParallelView(kBatchBufferPages, kBatchShards, read_latency);
  TreeStore::View vq =
      q.OpenParallelView(kBatchBufferPages, kBatchShards, read_latency);
  BatchOptions options;
  options.threads = threads;
  BatchStats stats;
  Timer timer;
  const std::vector<BatchQueryResult> results =
      BatchKClosestPairs(*vp.tree, *vq.tree, batch, options, &stats);
  const double seconds = timer.ElapsedSeconds();
  for (const BatchQueryResult& r : results) KCPQ_CHECK_OK(r.status);
  return static_cast<double>(batch.size()) / seconds;
}

void PartBThroughput(BenchJson* json) {
  std::printf(
      "\nPart B: batch throughput — %zu queries, %zu x %zu uniform trees,\n"
      "buffer %zu pages/tree (%zu shards), disk-sim read latency %lld us\n",
      kBatchQueries, Scaled(kBatchTreeSize), Scaled(kBatchTreeSize),
      kBatchBufferPages, kBatchShards,
      static_cast<long long>(kDiskReadLatency.count()));
  auto store_p = MakeStore(DataKind::kUniform, Scaled(kBatchTreeSize), 1.0, 7);
  auto store_q = MakeStore(DataKind::kUniform, Scaled(kBatchTreeSize), 1.0, 8);
  const std::vector<BatchQuery> batch = MakeBatch();

  Table table({"threads", "mem q/s", "mem speedup", "disk-sim q/s",
               "disk-sim speedup"});
  double mem_base = 0.0;
  double disk_base = 0.0;
  for (const size_t threads : {1, 2, 4, 8}) {
    const double mem_qps = RunBatch(*store_p, *store_q, batch, threads,
                                    std::chrono::microseconds(0));
    const double disk_qps =
        RunBatch(*store_p, *store_q, batch, threads, kDiskReadLatency);
    if (threads == 1) {
      mem_base = mem_qps;
      disk_base = disk_qps;
    }
    const double mem_speedup = mem_qps / mem_base;
    const double disk_speedup = disk_qps / disk_base;
    table.AddRow({std::to_string(threads), Table::Num(mem_qps, 1),
                  Table::Num(mem_speedup, 2), Table::Num(disk_qps, 1),
                  Table::Num(disk_speedup, 2)});
    if (threads == 8) {
      json->AddScalar("throughput_speedup_mem_8t", mem_speedup);
      json->AddScalar("throughput_speedup_disk_8t", disk_speedup);
    }
  }
  table.Print(stdout);
  std::printf(
      "\nExpectation: disk-sim speedup at 8 threads >= 3x (overlapped I/O "
      "waits; holds even on a single core). Mem-mode speedup tracks the "
      "machine's core count instead.\n");
  json->AddTable("batch_throughput", table);
}

void Main() {
  PrintFigureHeader("Parallel engine",
                    "plane-sweep leaf kernel ablation + batch query "
                    "throughput scaling");
  BenchJson json("parallel");
  PartAKernelAblation(&json);
  PartBThroughput(&json);
  json.Write();
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() { kcpq::bench::Main(); }
