// Figure 9: the LRU-buffer x K surface — disk accesses of (a) STD and
// (b) HEAP for buffer B = 0..256 pages and K = 1..100,000. Real
// (Sequoia-like) vs uniform 62,536 points, overlap 0%.

#include <cstdio>

#include "bench/bench_util.h"

namespace kcpq {
namespace bench {
namespace {

constexpr size_t kKs[] = {1, 10, 100, 1000, 10000, 100000};
constexpr size_t kBufferSizes[] = {0, 4, 16, 64, 256};

void RunPanel(const char* panel, CpqAlgorithm algorithm, TreeStore& store_p,
              TreeStore& store_q) {
  std::printf("\nFigure 9%s: %s disk accesses (rows: buffer; columns: K)\n",
              panel, CpqAlgorithmName(algorithm));
  Table table({"B(pages)", "K=1", "K=10", "K=100", "K=1000", "K=10000",
               "K=100000"});
  for (const size_t buffer_pages : kBufferSizes) {
    std::vector<std::string> row = {Table::Count(buffer_pages)};
    for (const size_t k : kKs) {
      CpqOptions options;
      options.algorithm = algorithm;
      options.k = k;
      row.push_back(Table::Count(
          RunCpq(store_p, store_q, options, buffer_pages)
              .stats.disk_accesses()));
    }
    table.AddRow(std::move(row));
  }
  table.Print(stdout);
}

void Main() {
  PrintFigureHeader("Figure 9",
                    "LRU buffer x K surface for STD and HEAP; R vs uniform "
                    "62,536, overlap 0%");
  auto real_store =
      MakeStore(DataKind::kSequoiaLike, Scaled(kSequoiaCardinality), 1.0, 77);
  auto store_q =
      MakeStore(DataKind::kUniform, Scaled(kSequoiaCardinality), 0.0, 2008);
  RunPanel("a", CpqAlgorithm::kSortedDistances, *real_store, *store_q);
  RunPanel("b", CpqAlgorithm::kHeap, *real_store, *store_q);
  std::printf(
      "\nPaper expectation: STD gains up to an order of magnitude from the "
      "buffer (largest for big K); HEAP benefits only for K >= 10,000 and "
      "B > 16, so STD overtakes HEAP beyond B = 4 pages.\n");
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() { kcpq::bench::Main(); }
