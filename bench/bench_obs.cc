// Telemetry-service overhead guard.
//
// Not a figure of the paper — this harness proves the live telemetry
// service (src/obs/: exporter + in-flight query registry) is cheap enough
// to leave on in production. One binary, two modes of the same batch
// workload, bench_trace's methodology (interleaved reps, keep the per-mode
// minimum so machine noise inflates both sides equally):
//
//   off: BatchKClosestPairs with no registry, no exporter running.
//   on:  every query registers a live QueryObservation, the HTTP exporter
//        serves 127.0.0.1:<ephemeral>, and a background scraper issues
//        real GETs against /metrics and /queries at the configured cadence
//        (KCPQ_OBS_SCRAPE_MS, default 1000 — one scrape per second, the
//        acceptance setting; each rep also scrapes once up front so short
//        REPRO_SCALE runs still exercise the exporter).
//
// The relative overhead t_on / t_off - 1 must stay under
// KCPQ_OBS_MAX_OVERHEAD (default 1%) or the bench exits non-zero — CI
// runs it as a smoke job. Every rep also asserts the observability
// contract: result pairs and the paper's disk-access metric bit-identical
// to the unobserved baseline.
//
// Results land in BENCH_obs.json, including the exporter-scrape latency
// histogram summarized by BenchJson::AddHistogramStats.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "exec/batch.h"
#include "obs/http_exporter.h"
#include "obs/query_registry.h"

namespace kcpq {
namespace bench {
namespace {

constexpr int kReps = 5;
constexpr size_t kTreeSize = 100000;
constexpr size_t kBatchQueries = 8;
constexpr size_t kThreads = 2;
// Zero-buffer views (the paper's setting): every node access is a
// physical read, so per-query disk accesses are independent of thread
// interleaving and the bit-identity assertion below is exact.
constexpr size_t kBufferPages = 0;
constexpr size_t kShards = 8;

double EnvDouble(const char* name, double fallback) {
  if (const char* env = std::getenv(name); env != nullptr && *env) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return fallback;
}

std::vector<BatchQuery> MakeBatch() {
  std::vector<BatchQuery> batch(kBatchQueries);
  constexpr size_t kKs[] = {1, 10, 100, 1000};
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i].options.k = kKs[i % 4];
    batch[i].options.algorithm = CpqAlgorithm::kHeap;
  }
  return batch;
}

struct RunOutcome {
  double seconds = 0.0;
  std::vector<std::vector<double>> distances;  // per query, per rank
  uint64_t disk_accesses = 0;
};

// One timed batch over cold views; `registry` non-null = observed mode.
RunOutcome RunBatch(TreeStore& p, TreeStore& q,
                    const std::vector<BatchQuery>& batch,
                    obs::QueryRegistry* registry) {
  TreeStore::View vp = p.OpenParallelView(kBufferPages, kShards);
  TreeStore::View vq = q.OpenParallelView(kBufferPages, kShards);
  BatchOptions options;
  options.threads = kThreads;
  options.query_registry = registry;
  BatchStats stats;
  Timer timer;
  const std::vector<BatchQueryResult> results =
      BatchKClosestPairs(*vp.tree, *vq.tree, batch, options, &stats);
  RunOutcome out;
  out.seconds = timer.ElapsedSeconds();
  out.disk_accesses = stats.disk_accesses;
  for (const BatchQueryResult& r : results) {
    KCPQ_CHECK_OK(r.status);
    std::vector<double> distances;
    distances.reserve(r.pairs.size());
    for (const PairResult& pair : r.pairs) distances.push_back(pair.distance);
    out.distances.push_back(std::move(distances));
  }
  return out;
}

bool SameResults(const RunOutcome& a, const RunOutcome& b) {
  return a.distances == b.distances && a.disk_accesses == b.disk_accesses;
}

int Main() {
  PrintFigureHeader("Telemetry-service overhead",
                    "batch wall clock, exporter + registry on vs off");

  const double max_overhead = EnvDouble("KCPQ_OBS_MAX_OVERHEAD", 0.01);
  const double scrape_ms = EnvDouble("KCPQ_OBS_SCRAPE_MS", 1000.0);

  auto store_p = MakeStore(DataKind::kUniform, Scaled(kTreeSize), 1.0, 42);
  auto store_q = MakeStore(DataKind::kUniform, Scaled(kTreeSize), 1.0, 43);
  const std::vector<BatchQuery> batch = MakeBatch();

  // One long-lived exporter + scraper for all "on" reps: the acceptance
  // setting is a server that is simply always being scraped.
  obs::QueryRegistry registry;
  obs::HttpExporter exporter;
  std::string error;
  if (!exporter.Start(0, &registry, &error)) {
    std::fprintf(stderr, "bench_obs: cannot start exporter: %s\n",
                 error.c_str());
    return 1;
  }
  std::atomic<bool> stop_scraper{false};
  std::atomic<uint64_t> scrapes{0};
  std::atomic<bool> scrape_now{false};
  std::thread scraper([&] {
    const auto interval =
        std::chrono::microseconds(static_cast<int64_t>(scrape_ms * 1e3));
    auto next = std::chrono::steady_clock::now();
    while (!stop_scraper.load(std::memory_order_relaxed)) {
      if (std::chrono::steady_clock::now() >= next ||
          scrape_now.exchange(false, std::memory_order_relaxed)) {
        std::string body;
        if (obs::HttpGet("127.0.0.1", exporter.port(), "/metrics", &body) &&
            obs::HttpGet("127.0.0.1", exporter.port(), "/queries?state=all",
                         &body)) {
          scrapes.fetch_add(1, std::memory_order_relaxed);
        }
        next = std::chrono::steady_clock::now() + interval;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  // Warm up once per mode (first touch pays allocator + registry setup).
  const RunOutcome baseline = RunBatch(*store_p, *store_q, batch, nullptr);
  RunBatch(*store_p, *store_q, batch, &registry);

  BenchJson json("obs");
  double t_off = 0.0;
  double t_on = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    const RunOutcome off = RunBatch(*store_p, *store_q, batch, nullptr);
    scrape_now.store(true, std::memory_order_relaxed);
    const RunOutcome on = RunBatch(*store_p, *store_q, batch, &registry);
    if (!SameResults(off, baseline) || !SameResults(on, baseline)) {
      std::fprintf(stderr,
                   "FAIL: rep %d results differ across exporter modes\n",
                   rep + 1);
      stop_scraper.store(true, std::memory_order_relaxed);
      scraper.join();
      exporter.Stop();
      return 1;
    }
    t_off = rep == 0 ? off.seconds : std::min(t_off, off.seconds);
    t_on = rep == 0 ? on.seconds : std::min(t_on, on.seconds);
    std::printf("rep %d: off %.3f ms, on %.3f ms\n", rep + 1,
                off.seconds * 1e3, on.seconds * 1e3);
  }
  stop_scraper.store(true, std::memory_order_relaxed);
  scraper.join();
  exporter.Stop();

  const double overhead = t_off > 0.0 ? t_on / t_off - 1.0 : 0.0;
  std::printf("best-of-%d: off %.3f ms, on %.3f ms, overhead %.2f%% "
              "(limit %.1f%%), %llu scrapes served\n",
              kReps, t_off * 1e3, t_on * 1e3, overhead * 100,
              max_overhead * 100,
              static_cast<unsigned long long>(scrapes.load()));

  json.AddScalar("seconds_exporter_off", t_off);
  json.AddScalar("seconds_exporter_on", t_on);
  json.AddScalar("overhead", overhead);
  json.AddScalar("max_overhead", max_overhead);
  json.AddScalar("scrapes", static_cast<double>(scrapes.load()));
  json.AddScalar("queries_recorded", static_cast<double>(registry.done_count()));
  json.AddHistogramStats("scrape_seconds", "kcpq_obs_scrape_seconds");
  json.Write();

  if (overhead > max_overhead) {
    std::fprintf(stderr,
                 "FAIL: telemetry overhead %.2f%% exceeds limit %.1f%%\n",
                 overhead * 100, max_overhead * 100);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() { return kcpq::bench::Main(); }
