#include "bench/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace kcpq {
namespace bench {

double ReproScale() {
  static const double scale = [] {
    const char* env = std::getenv("REPRO_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
  }();
  return scale;
}

size_t Scaled(size_t n) {
  const double v = static_cast<double>(n) * ReproScale();
  return std::max<size_t>(16, static_cast<size_t>(v));
}

TreeStore::TreeStore(DataKind kind, size_t n, const Rect& workspace,
                     uint64_t seed, const RTreeOptions& options) {
  const std::vector<Point> points =
      kind == DataKind::kUniform ? GenerateUniform(n, workspace, seed)
                                 : GenerateSequoiaLike(n, workspace, seed);
  BufferManager build_buffer(&storage_, 0);
  auto created = RStarTree::Create(&build_buffer, options);
  KCPQ_CHECK_OK(created.status());
  auto tree = std::move(created).value();
  for (size_t i = 0; i < points.size(); ++i) {
    KCPQ_CHECK_OK(tree->Insert(points[i], i));
  }
  KCPQ_CHECK_OK(tree->Flush());
  meta_ = tree->meta_page();
  size_ = tree->size();
  height_ = tree->height();
}

TreeStore::View TreeStore::OpenView(size_t buffer_pages) {
  View view;
  view.buffer = std::make_unique<BufferManager>(&storage_, buffer_pages);
  auto opened = RStarTree::Open(view.buffer.get(), meta_);
  KCPQ_CHECK_OK(opened.status());
  view.tree = std::move(opened).value();
  return view;
}

std::unique_ptr<TreeStore> MakeStore(DataKind kind, size_t n, double overlap,
                                     uint64_t seed) {
  return std::make_unique<TreeStore>(
      kind, n, ShiftedWorkspace(UnitWorkspace(), overlap), seed);
}

QueryOutcome RunCpq(TreeStore& p, TreeStore& q, const CpqOptions& options,
                    size_t buffer_pages_total) {
  TreeStore::View vp = p.OpenView(buffer_pages_total / 2);
  TreeStore::View vq = q.OpenView(buffer_pages_total / 2);
  QueryOutcome outcome;
  Timer timer;
  auto result = KClosestPairs(*vp.tree, *vq.tree, options, &outcome.stats);
  KCPQ_CHECK_OK(result.status());
  outcome.seconds = timer.ElapsedSeconds();
  if (!result.value().empty()) {
    outcome.result_distance = result.value().back().distance;
  }
  return outcome;
}

HsOutcome RunHs(TreeStore& p, TreeStore& q, size_t k, const HsOptions& options,
                size_t buffer_pages_total) {
  TreeStore::View vp = p.OpenView(buffer_pages_total / 2);
  TreeStore::View vq = q.OpenView(buffer_pages_total / 2);
  HsOutcome outcome;
  Timer timer;
  auto result = HsKClosestPairs(*vp.tree, *vq.tree, k, options, &outcome.stats);
  KCPQ_CHECK_OK(result.status());
  outcome.seconds = timer.ElapsedSeconds();
  return outcome;
}

void PrintFigureHeader(const std::string& figure,
                       const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("(Corral et al., SIGMOD 2000; REPRO_SCALE=%.3g)\n", ReproScale());
  std::printf("==============================================================\n");
}

}  // namespace bench
}  // namespace kcpq
