#include "bench/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "buffer/replacement_policy.h"
#include "storage/latency_storage.h"

namespace kcpq {
namespace bench {

double ReproScale() {
  static const double scale = [] {
    const char* env = std::getenv("REPRO_SCALE");
    if (env == nullptr) return 1.0;
    const double v = std::atof(env);
    return v > 0.0 ? v : 1.0;
  }();
  return scale;
}

size_t Scaled(size_t n) {
  const double v = static_cast<double>(n) * ReproScale();
  return std::max<size_t>(16, static_cast<size_t>(v));
}

TreeStore::TreeStore(DataKind kind, size_t n, const Rect& workspace,
                     uint64_t seed, const RTreeOptions& options) {
  const std::vector<Point> points =
      kind == DataKind::kUniform ? GenerateUniform(n, workspace, seed)
                                 : GenerateSequoiaLike(n, workspace, seed);
  BufferManager build_buffer(&storage_, 0);
  auto created = RStarTree::Create(&build_buffer, options);
  KCPQ_CHECK_OK(created.status());
  auto tree = std::move(created).value();
  for (size_t i = 0; i < points.size(); ++i) {
    KCPQ_CHECK_OK(tree->Insert(points[i], i));
  }
  KCPQ_CHECK_OK(tree->Flush());
  meta_ = tree->meta_page();
  size_ = tree->size();
  height_ = tree->height();
}

TreeStore::View TreeStore::OpenView(size_t buffer_pages) {
  View view;
  view.buffer = std::make_unique<BufferManager>(&storage_, buffer_pages);
  auto opened = RStarTree::Open(view.buffer.get(), meta_);
  KCPQ_CHECK_OK(opened.status());
  view.tree = std::move(opened).value();
  return view;
}

TreeStore::View TreeStore::OpenParallelView(
    size_t buffer_pages, size_t shards,
    std::chrono::microseconds read_latency) {
  View view;
  StorageManager* storage = &storage_;
  if (read_latency.count() > 0) {
    view.slow_storage =
        std::make_unique<LatencyStorageManager>(&storage_, read_latency);
    storage = view.slow_storage.get();
  }
  view.buffer = std::make_unique<BufferManager>(
      storage, buffer_pages, shards, [] { return MakeLruPolicy(); });
  auto opened = RStarTree::Open(view.buffer.get(), meta_);
  KCPQ_CHECK_OK(opened.status());
  view.tree = std::move(opened).value();
  return view;
}

std::unique_ptr<TreeStore> MakeStore(DataKind kind, size_t n, double overlap,
                                     uint64_t seed) {
  return std::make_unique<TreeStore>(
      kind, n, ShiftedWorkspace(UnitWorkspace(), overlap), seed);
}

QueryOutcome RunCpq(TreeStore& p, TreeStore& q, const CpqOptions& options,
                    size_t buffer_pages_total) {
  TreeStore::View vp = p.OpenView(buffer_pages_total / 2);
  TreeStore::View vq = q.OpenView(buffer_pages_total / 2);
  QueryOutcome outcome;
  Timer timer;
  auto result = KClosestPairs(*vp.tree, *vq.tree, options, &outcome.stats);
  KCPQ_CHECK_OK(result.status());
  outcome.seconds = timer.ElapsedSeconds();
  if (!result.value().empty()) {
    outcome.result_distance = result.value().back().distance;
  }
  return outcome;
}

HsOutcome RunHs(TreeStore& p, TreeStore& q, size_t k, const HsOptions& options,
                size_t buffer_pages_total) {
  TreeStore::View vp = p.OpenView(buffer_pages_total / 2);
  TreeStore::View vq = q.OpenView(buffer_pages_total / 2);
  HsOutcome outcome;
  Timer timer;
  auto result = HsKClosestPairs(*vp.tree, *vq.tree, k, options, &outcome.stats);
  KCPQ_CHECK_OK(result.status());
  outcome.seconds = timer.ElapsedSeconds();
  return outcome;
}

void PrintFigureHeader(const std::string& figure,
                       const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("(Corral et al., SIGMOD 2000; REPRO_SCALE=%.3g)\n", ReproScale());
  std::printf("==============================================================\n");
}

namespace {

// Escapes a string for embedding in a JSON document.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Emits a cell as a bare JSON number when it parses fully as one (so
// downstream tooling can chart it), otherwise as a quoted string.
std::string JsonCell(const std::string& cell) {
  if (!cell.empty()) {
    char* end = nullptr;
    std::strtod(cell.c_str(), &end);
    if (end != nullptr && *end == '\0') return cell;
  }
  std::string quoted;
  quoted.push_back('"');
  quoted.append(JsonEscape(cell));
  quoted.push_back('"');
  return quoted;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

obs::MetricsSnapshot CaptureMetrics() {
  return obs::MetricsRegistry::Global().Snapshot();
}

void BenchJson::AddScalar(const std::string& key, double value) {
  scalars_.emplace_back(key, value);
}

void BenchJson::AddHistogramStats(const std::string& key,
                                  const std::string& metric_name) {
  const obs::MetricsSnapshot delta =
      obs::MetricsSnapshot::Delta(metrics_baseline_, CaptureMetrics());
  const obs::MetricsSnapshot::HistogramValue* h =
      delta.FindHistogram(metric_name);
  if (h == nullptr || h->count == 0) return;

  // Quantile from the cumulative bucket counts, linearly interpolated
  // within the winning bucket. The +inf bucket has no width; report its
  // lower edge (the last finite bound).
  const auto quantile = [h](double q) {
    const uint64_t rank = static_cast<uint64_t>(
        q * static_cast<double>(h->count - 1)) + 1;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h->bucket_counts.size(); ++i) {
      const uint64_t in_bucket = h->bucket_counts[i];
      if (cumulative + in_bucket < rank) {
        cumulative += in_bucket;
        continue;
      }
      const double lo = i == 0 ? 0.0 : h->bounds[i - 1];
      if (i >= h->bounds.size()) return lo;  // +inf bucket
      const double hi = h->bounds[i];
      const double frac = in_bucket == 0
                              ? 0.0
                              : static_cast<double>(rank - cumulative) /
                                    static_cast<double>(in_bucket);
      return lo + (hi - lo) * frac;
    }
    return h->bounds.empty() ? 0.0 : h->bounds.back();
  };

  AddScalar(key + "_count", static_cast<double>(h->count));
  AddScalar(key + "_mean", h->sum / static_cast<double>(h->count));
  AddScalar(key + "_p50", quantile(0.50));
  AddScalar(key + "_p99", quantile(0.99));
}

void BenchJson::AddTable(const std::string& key, const Table& table) {
  tables_.emplace_back(key, table);
}

void BenchJson::Write() const {
  std::ostringstream out;
  out << "{\n  \"bench\": \"" << JsonEscape(name_) << "\",\n"
      << "  \"repro_scale\": " << FormatDouble(ReproScale()) << ",\n"
      << "  \"scalars\": {";
  for (size_t i = 0; i < scalars_.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n") << "    \"" << JsonEscape(scalars_[i].first)
        << "\": " << FormatDouble(scalars_[i].second);
  }
  out << (scalars_.empty() ? "" : "\n  ") << "},\n  \"tables\": {";
  for (size_t t = 0; t < tables_.size(); ++t) {
    const Table& table = tables_[t].second;
    out << (t == 0 ? "\n" : ",\n") << "    \"" << JsonEscape(tables_[t].first)
        << "\": {\n      \"header\": [";
    for (size_t c = 0; c < table.header().size(); ++c) {
      out << (c == 0 ? "" : ", ") << "\"" << JsonEscape(table.header()[c])
          << "\"";
    }
    out << "],\n      \"rows\": [";
    for (size_t r = 0; r < table.rows().size(); ++r) {
      out << (r == 0 ? "\n" : ",\n") << "        [";
      const auto& row = table.rows()[r];
      for (size_t c = 0; c < row.size(); ++c) {
        out << (c == 0 ? "" : ", ") << JsonCell(row[c]);
      }
      out << "]";
    }
    out << (table.rows().empty() ? "" : "\n      ") << "]\n    }";
  }
  out << (tables_.empty() ? "" : "\n  ") << "},\n  \"metrics\": "
      << obs::MetricsSnapshot::Delta(metrics_baseline_, CaptureMetrics())
             .ToJson()
      << "\n}\n";

  std::string dir;
  if (const char* env = std::getenv("BENCH_DIR"); env != nullptr && *env) {
    dir = std::string(env) + "/";
  }
  const std::string path = dir + "BENCH_" + name_ + ".json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "BenchJson: cannot open %s for writing\n",
                 path.c_str());
    return;
  }
  const std::string body = out.str();
  std::fwrite(body.data(), 1, body.size(), f);
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace bench
}  // namespace kcpq
