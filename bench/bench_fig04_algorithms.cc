// Figure 4: the four 1-CPQ algorithms (EXH, SIM, STD, HEAP) on the real
// ("R", Sequoia-like, 62,536 points) data set vs random data of 20K-80K
// points, in (a) 0% and (b) 100% overlapping workspaces. No buffer.

#include <cstdio>

#include "bench/bench_util.h"

namespace kcpq {
namespace bench {
namespace {

constexpr CpqAlgorithm kAlgorithms[] = {
    CpqAlgorithm::kExhaustive, CpqAlgorithm::kSimple,
    CpqAlgorithm::kSortedDistances, CpqAlgorithm::kHeap};

void RunPanel(const char* panel, double overlap, TreeStore& real_store,
              BenchJson* json) {
  std::printf("\nFigure 4%s: %.0f%% overlapping workspaces, disk accesses\n",
              panel, overlap * 100);
  Table table({"datasets", "EXH", "SIM", "STD", "HEAP"});
  for (const size_t n : {20000, 40000, 60000, 80000}) {
    auto store_q = MakeStore(DataKind::kUniform, Scaled(n), overlap, 2003);
    std::vector<std::string> row = {"R/" + std::to_string(n / 1000) + "K"};
    for (const CpqAlgorithm algorithm : kAlgorithms) {
      CpqOptions options;
      options.algorithm = algorithm;
      options.k = 1;
      row.push_back(Table::Count(
          RunCpq(real_store, *store_q, options, 0).stats.disk_accesses()));
    }
    table.AddRow(std::move(row));
  }
  table.Print(stdout);
  json->AddTable(std::string("panel_") + panel, table);
}

void Main() {
  PrintFigureHeader("Figure 4",
                    "1-CPQ algorithm comparison: real (Sequoia-like) vs "
                    "random data, no buffer");
  BenchJson json("fig04_algorithms");
  auto real_store =
      MakeStore(DataKind::kSequoiaLike, Scaled(kSequoiaCardinality), 1.0, 77);
  RunPanel("a", 0.0, *real_store, &json);
  RunPanel("b", 1.0, *real_store, &json);
  json.Write();
  std::printf(
      "\nPaper expectation: at 0%% overlap STD/HEAP are about an order of "
      "magnitude cheaper than EXH/SIM; at 100%% overlap HEAP leads by ~20%% "
      "and STD by ~10%% on average.\n");
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() { kcpq::bench::Main(); }
