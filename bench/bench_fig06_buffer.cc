// Figure 6: the effect of the LRU buffer on the four 1-CPQ algorithms.
// Real (Sequoia-like) data vs random 40K/80K, buffer B = 0..256 pages
// (split B/2 per tree), overlap 0% (panel a) and 100% (panel b).

#include <cstdio>

#include "bench/bench_util.h"

namespace kcpq {
namespace bench {
namespace {

constexpr size_t kBufferSizes[] = {0, 4, 16, 64, 256};

void RunPanel(const char* panel, double overlap, TreeStore& real_store) {
  std::printf("\nFigure 6%s: %.0f%% overlapping workspaces, disk accesses\n",
              panel, overlap * 100);
  for (const size_t n : {40000, 80000}) {
    std::printf("R/%zuK:\n", n / 1000);
    auto store_q = MakeStore(DataKind::kUniform, Scaled(n), overlap, 2005);
    Table table({"B(pages)", "EXH", "SIM", "STD", "HEAP"});
    for (const size_t buffer_pages : kBufferSizes) {
      std::vector<std::string> row = {Table::Count(buffer_pages)};
      for (const CpqAlgorithm algorithm :
           {CpqAlgorithm::kExhaustive, CpqAlgorithm::kSimple,
            CpqAlgorithm::kSortedDistances, CpqAlgorithm::kHeap}) {
        CpqOptions options;
        options.algorithm = algorithm;
        options.k = 1;
        row.push_back(Table::Count(
            RunCpq(real_store, *store_q, options, buffer_pages)
                .stats.disk_accesses()));
      }
      table.AddRow(std::move(row));
    }
    table.Print(stdout);
  }
}

void Main() {
  PrintFigureHeader("Figure 6",
                    "LRU buffer sweep for the four 1-CPQ algorithms; real "
                    "vs random data");
  auto real_store =
      MakeStore(DataKind::kSequoiaLike, Scaled(kSequoiaCardinality), 1.0, 77);
  RunPanel("a", 0.0, *real_store);
  RunPanel("b", 1.0, *real_store);
  std::printf(
      "\nPaper expectation: EXH/SIM improve 2-3x with growing buffer but "
      "never catch STD/HEAP at 0%% overlap; at 100%% overlap HEAP is "
      "insensitive to the buffer and loses its lead beyond B = 4.\n");
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() { kcpq::bench::Main(); }
