// Figure 3: fix-at-leaves vs fix-at-root for trees of different heights,
// STD and HEAP algorithms. Taller tree: 80K random points (height 5);
// shorter: 20K/40K/60K (height 4). Overlap 0/50/100%, 1-CPQ, no buffer.

#include <cstdio>

#include "bench/bench_util.h"

namespace kcpq {
namespace bench {
namespace {

void RunPanel(const char* panel, CpqAlgorithm algorithm,
              TreeStore& tall_store) {
  std::printf("\nFigure 3%s: %s algorithm, disk accesses (log-scale data)\n",
              panel, CpqAlgorithmName(algorithm));
  Table table({"datasets", "overlap", "fix-at-leaves", "fix-at-root",
               "root/leaves"});
  for (const size_t short_n : {60000, 40000, 20000}) {
    auto short_label = std::to_string(short_n / 1000) + "K/80K";
    for (const double overlap : {0.0, 0.5, 1.0}) {
      auto store_q = MakeStore(DataKind::kUniform, Scaled(short_n), overlap,
                               2002);
      uint64_t accesses[2] = {0, 0};
      int i = 0;
      for (const HeightStrategy strategy :
           {HeightStrategy::kFixAtLeaves, HeightStrategy::kFixAtRoot}) {
        CpqOptions options;
        options.algorithm = algorithm;
        options.k = 1;
        options.height_strategy = strategy;
        accesses[i++] =
            RunCpq(tall_store, *store_q, options, 0).stats.disk_accesses();
      }
      table.AddRow({short_label, Table::Percent(overlap),
                    Table::Count(accesses[0]), Table::Count(accesses[1]),
                    Table::Percent(static_cast<double>(accesses[1]) /
                                   (accesses[0] > 0 ? accesses[0] : 1))});
    }
  }
  table.Print(stdout);
}

void Main() {
  PrintFigureHeader("Figure 3",
                    "Height-treatment strategies on trees of different "
                    "heights; 20K-60K vs 80K random, 1-CPQ, no buffer");
  auto tall = MakeStore(DataKind::kUniform, Scaled(80000), 1.0, 1002);
  std::printf("taller tree height: %d\n", tall->height());
  RunPanel("a", CpqAlgorithm::kSortedDistances, *tall);
  RunPanel("b", CpqAlgorithm::kHeap, *tall);
  std::printf(
      "\nPaper expectation: fix-at-root better for HEAP (10-40%% gain); for "
      "STD the two are comparable except 0%% overlap where fix-at-leaves "
      "wins.\n");
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() { kcpq::bench::Main(); }
