// Native io_uring completion loop benchmark: batch throughput of the
// resumable executor over a real on-disk FileStorageManager, pool loop vs
// native ring (docs/io.md, "Native completion event loop").
//
// Not a figure of the paper — this harness measures the storage
// completion path layered under the reproduction. The same batch of HEAP
// K-CPQ queries (mixed K, zero-capacity buffers so every node read is a
// real file read) runs once per backend over cold caches:
//
//   pool    --io-backend=pool: every miss is dispatched as a task to the
//           shared IoThreadPool; each page pays a queue handoff, a worker
//           wake-up, and a pread on a pool thread.
//   uring   --io-backend=uring: misses are submitted as SQEs into the
//           persistent ring from the scheduler worker itself; a single
//           reaper drains CQE batches and wakes parked tasks directly.
//
// Both runs must produce bit-identical pairs and identical per-query
// disk-access counts — the speedup comes from cheaper submission and
// batched completion, never from different work. The page cache is
// dropped (POSIX_FADV_DONTNEED) before each run so both backends read
// from the device.
//
// A fourth, fully-buffered run measures the batch's compute floor — the
// query work no completion path can touch — and the harness reports both
// the end-to-end speedup and the floor-subtracted I/O-path speedup. On a
// host with few cores the queries' own compute shares the cores with the
// I/O path, so the end-to-end ratio is Amdahl-capped at pool/floor; the
// I/O-path ratio is the honest measure of the completion path itself.
//
// Expectation: >= 1.5x I/O-path speedup for uring (the acceptance bar;
// set URING_MIN_SPEEDUP to gate the exit status on it). Skips cleanly —
// exit 0 with a visible reason — when the kernel refuses rings.
//
// Results also land in BENCH_uring.json for machine consumption.

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "exec/batch.h"
#include "storage/file_storage.h"
#include "storage/uring_ring.h"

namespace kcpq {
namespace bench {
namespace {

constexpr PageId kMetaPage = 0;
constexpr size_t kTreeSize = 30000;
constexpr size_t kShards = 64;
constexpr size_t kQueries = 128;
constexpr size_t kWorkers = 4;
constexpr size_t kMaxInflight = 128;
constexpr size_t kPrefetchWindow = 8;  // multi-SQE submission batches

// The paper's zero-buffer setting: every node read is a real file read,
// so per-query counts cannot depend on how queries interleave.
constexpr size_t kBufferPages = 0;

/// A real on-disk tree in a temp file, reopened cold for each run.
struct FileTree {
  std::string path;
  std::unique_ptr<FileStorageManager> storage;

  FileTree() = default;
  FileTree(FileTree&& other) noexcept
      : path(std::move(other.path)), storage(std::move(other.storage)) {
    other.path.clear();
  }
  FileTree& operator=(FileTree&&) = delete;

  ~FileTree() {
    storage.reset();
    if (!path.empty()) ::unlink(path.c_str());
  }
};

FileTree BuildFileTree(size_t n, uint64_t seed) {
  FileTree ft;
  char tmpl[] = "/tmp/kcpq_bench_uring_XXXXXX";
  const int fd = ::mkstemp(tmpl);
  KCPQ_CHECK_OK(fd >= 0 ? Status::OK() : Status::IoError("mkstemp"));
  ::close(fd);
  ft.path = tmpl;
  auto created = FileStorageManager::Create(ft.path);
  KCPQ_CHECK_OK(created.status());
  ft.storage = std::move(created).value();
  {
    BufferManager buffer(ft.storage.get(), 0);
    auto tree = RStarTree::Create(&buffer);
    KCPQ_CHECK_OK(tree.status());
    const std::vector<Point> points =
        GenerateUniform(n, UnitWorkspace(), seed);
    for (size_t i = 0; i < points.size(); ++i) {
      KCPQ_CHECK_OK(tree.value()->Insert(points[i], i));
    }
    KCPQ_CHECK_OK(tree.value()->Flush());
    KCPQ_CHECK_OK(
        tree.value()->meta_page() == kMetaPage
            ? Status::OK()
            : Status::Internal("meta page landed off page 0"));
  }
  KCPQ_CHECK_OK(ft.storage->Sync());
  return ft;
}

/// Evict the file's pages so the next run reads from the device, not the
/// page cache — the backends race on real completions.
void DropCaches(const FileTree& ft) {
  const int fd = ::open(ft.path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
  ::close(fd);
}

std::vector<BatchQuery> MakeBatch() {
  std::vector<BatchQuery> batch(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    batch[i].kind = BatchQueryKind::kClosestPairs;
    batch[i].options.algorithm = CpqAlgorithm::kHeap;
    batch[i].options.k = (i % 3 == 0) ? 1 : (i % 3 == 1) ? 10 : 100;
  }
  return batch;
}

struct BatchOutcome {
  std::vector<BatchQueryResult> results;
  double makespan = 0.0;
  uint64_t disk_accesses = 0;
  IoEventLoopStats uring;  // zeroes for the pool run
};

BatchOutcome RunBatch(FileTree& p, FileTree& q, IoBackend backend,
                      size_t buffer_pages = kBufferPages) {
  DropCaches(p);
  DropCaches(q);
  if (backend == IoBackend::kUring) {
    FileStorageManager::UringOptions uopt;
    uopt.sq_depth = static_cast<unsigned>(kMaxInflight);
    p.storage->ConfigureUring(uopt);
    q.storage->ConfigureUring(uopt);
  }
  KCPQ_CHECK_OK(p.storage->SetIoBackend(backend));
  KCPQ_CHECK_OK(q.storage->SetIoBackend(backend));

  BufferManager bp(p.storage.get(), buffer_pages, kShards,
                   [] { return MakeLruPolicy(); });
  BufferManager bq(q.storage.get(), buffer_pages, kShards,
                   [] { return MakeLruPolicy(); });
  auto tp = RStarTree::Open(&bp, kMetaPage);
  auto tq = RStarTree::Open(&bq, kMetaPage);
  KCPQ_CHECK_OK(tp.status());
  KCPQ_CHECK_OK(tq.status());

  const std::vector<BatchQuery> batch = MakeBatch();
  BatchOptions options;
  options.threads = kWorkers;
  options.scheduler = SchedulerMode::kResumable;
  options.max_inflight = kMaxInflight;
  options.prefetch_window = kPrefetchWindow;
  BatchStats stats;
  Timer timer;
  BatchOutcome out;
  out.results =
      BatchKClosestPairs(*tp.value(), *tq.value(), batch, options, &stats);
  out.makespan = timer.ElapsedSeconds();
  for (const BatchQueryResult& r : out.results) {
    KCPQ_CHECK_OK(r.status);
    out.disk_accesses += r.stats.disk_accesses();
  }
  if (backend == IoBackend::kUring) {
    const IoEventLoopStats sp = p.storage->UringStats();
    const IoEventLoopStats sq = q.storage->UringStats();
    out.uring.batches_submitted = sp.batches_submitted + sq.batches_submitted;
    out.uring.reads_submitted = sp.reads_submitted + sq.reads_submitted;
    out.uring.cqe_wakes = sp.cqe_wakes + sq.cqe_wakes;
    out.uring.cqes_reaped = sp.cqes_reaped + sq.cqes_reaped;
    out.uring.sq_full_stalls = sp.sq_full_stalls + sq.sq_full_stalls;
    out.uring.fixed_buffer_reads =
        sp.fixed_buffer_reads + sq.fixed_buffer_reads;
    out.uring.deferred_batches = sp.deferred_batches + sq.deferred_batches;
  }
  return out;
}

// Bit-identical pairs and identical per-query disk accesses: the backends
// must do the same work against a different completion path, nothing else.
bool SameWork(const BatchOutcome& a, const BatchOutcome& b) {
  if (a.results.size() != b.results.size()) return false;
  for (size_t i = 0; i < a.results.size(); ++i) {
    const BatchQueryResult& ra = a.results[i];
    const BatchQueryResult& rb = b.results[i];
    if (ra.stats.disk_accesses() != rb.stats.disk_accesses()) return false;
    if (ra.pairs.size() != rb.pairs.size()) return false;
    for (size_t j = 0; j < ra.pairs.size(); ++j) {
      if (ra.pairs[j].distance != rb.pairs[j].distance) return false;
      if (ra.pairs[j].p_id != rb.pairs[j].p_id) return false;
      if (ra.pairs[j].q_id != rb.pairs[j].q_id) return false;
    }
  }
  return true;
}

void Main() {
  PrintFigureHeader("Uring",
                    "file-backed batch throughput: IoThreadPool dispatch "
                    "vs native io_uring completion loop");
  if (!UringAvailable()) {
    std::printf("SKIP: io_uring unavailable on this kernel: %s\n",
                UringUnavailableReason());
    return;  // exit 0: absence of rings is an environment, not a failure
  }
  std::printf(
      "uniform %zu x %zu on disk, %zu HEAP queries (K in {1, 10, 100}), "
      "%zu workers, %zu in-flight, prefetch window %zu, cold page cache, "
      "zero-capacity buffers, pool baseline at %s I/O threads\n",
      Scaled(kTreeSize), Scaled(kTreeSize), kQueries, kWorkers, kMaxInflight,
      kPrefetchWindow, std::getenv("KCPQ_IO_THREADS"));
  BenchJson json("uring");
  FileTree p = BuildFileTree(Scaled(kTreeSize), 71);
  FileTree q = BuildFileTree(Scaled(kTreeSize), 72);

  // Warm-up (faults in the binary and sizes the thread pools), then one
  // measured run per backend, pool first. A fully-buffered run measures
  // the batch's compute floor: the work no completion path can touch, so
  // the end-to-end ratio is Amdahl-capped at pool / floor — on few-core
  // hosts where the queries' own compute shares the cores with the I/O
  // path, the floor-subtracted ratio is the honest measure of the path
  // itself.
  RunBatch(p, q, IoBackend::kThreadPool);
  const BatchOutcome floor_run =
      RunBatch(p, q, IoBackend::kThreadPool, /*buffer_pages=*/8192);
  // Two interleaved runs per backend, best makespan kept: single runs on
  // shared hosts wobble by ~10% and interleaving cancels slow drift.
  const BatchOutcome pool_a = RunBatch(p, q, IoBackend::kThreadPool);
  const BatchOutcome uring_a = RunBatch(p, q, IoBackend::kUring);
  const BatchOutcome pool_b = RunBatch(p, q, IoBackend::kThreadPool);
  const BatchOutcome uring_b = RunBatch(p, q, IoBackend::kUring);
  const BatchOutcome& pool = pool_a.makespan <= pool_b.makespan ? pool_a
                                                                : pool_b;
  const BatchOutcome& uring = uring_a.makespan <= uring_b.makespan ? uring_a
                                                                   : uring_b;

  const double speedup = pool.makespan / uring.makespan;
  const double floor = floor_run.makespan;
  const double io_path_speedup =
      uring.makespan > floor && pool.makespan > floor
          ? (pool.makespan - floor) / (uring.makespan - floor)
          : speedup;
  Table table({"backend", "makespan s", "queries/s", "disk accesses"});
  const auto add = [&](const char* name, const BatchOutcome& o) {
    table.AddRow({name, Table::Num(o.makespan, 3),
                  Table::Num(static_cast<double>(kQueries) / o.makespan, 1),
                  Table::Count(static_cast<long long>(o.disk_accesses))});
  };
  add("pool", pool);
  add("uring", uring);
  table.Print(stdout);
  json.AddTable("backends", table);

  const bool identical = SameWork(pool_a, uring_a) &&
                         SameWork(pool_a, pool_b) && SameWork(pool_a, uring_b);
  const double cqes_per_wake =
      uring.uring.cqe_wakes > 0
          ? static_cast<double>(uring.uring.cqes_reaped) /
                static_cast<double>(uring.uring.cqe_wakes)
          : 0.0;
  std::printf("\nbatch throughput speedup (uring / pool): %.2fx end-to-end, "
              "%.2fx on the I/O path\n",
              speedup, io_path_speedup);
  std::printf(
      "compute floor (fully buffered): %.3f s — caps the end-to-end ratio "
      "at %.2fx on this host\n",
      floor, pool.makespan / floor);
  std::printf(
      "identical pairs and per-query disk accesses: %s (the completion "
      "path must not perturb results or the paper metric)\n",
      identical ? "yes" : "NO — BUG");
  std::printf(
      "uring: %llu reads in %llu submissions (%llu deferred to the "
      "reaper's enter), %.1f CQEs/wake, %llu sq-full stalls, %llu "
      "fixed-buffer reads\n",
      static_cast<unsigned long long>(uring.uring.reads_submitted),
      static_cast<unsigned long long>(uring.uring.batches_submitted),
      static_cast<unsigned long long>(uring.uring.deferred_batches),
      cqes_per_wake,
      static_cast<unsigned long long>(uring.uring.sq_full_stalls),
      static_cast<unsigned long long>(uring.uring.fixed_buffer_reads));
  std::printf(
      "Expectation: >= 1.5x on the I/O path with a cold cache and high "
      "--max-inflight (end-to-end needs cores for the queries' compute "
      "to overlap the ring).\n");
  json.AddScalar("speedup", speedup);
  json.AddScalar("io_path_speedup", io_path_speedup);
  json.AddScalar("compute_floor_s", floor);
  json.AddScalar("throughput_pool_qps",
                 static_cast<double>(kQueries) / pool.makespan);
  json.AddScalar("throughput_uring_qps",
                 static_cast<double>(kQueries) / uring.makespan);
  json.AddScalar("uring_reads", static_cast<double>(uring.uring.reads_submitted));
  json.AddScalar("uring_cqes_per_wake", cqes_per_wake);
  json.AddScalar("uring_sq_full_stalls",
                 static_cast<double>(uring.uring.sq_full_stalls));
  json.AddScalar("identical_results", identical ? 1.0 : 0.0);
  json.Write();

  if (!identical) std::exit(1);
  // The gate compares the I/O-path ratio: the compute floor is workload,
  // not completion path, and on small CI hosts it swamps the end-to-end
  // number (see the Amdahl cap printed above).
  if (const char* gate = std::getenv("URING_MIN_SPEEDUP")) {
    const double min_speedup = std::atof(gate);
    if (io_path_speedup < min_speedup) {
      std::fprintf(stderr,
                   "FAIL: I/O-path speedup %.2fx below URING_MIN_SPEEDUP=%s\n",
                   io_path_speedup, gate);
      std::exit(1);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() {
  // The pool baseline is sized for the in-flight target: a blocking
  // thread-per-read pool needs ~max_inflight/2 threads to sustain 128
  // outstanding reads against a device that actually blocks. That army
  // of blockable threads — and what it costs the host scheduler when
  // reads turn out to be page-cache hits — is precisely the design the
  // single-reaper ring replaces, so it is the fair baseline, not an
  // artifact. Override with KCPQ_IO_THREADS to measure other sizings
  // (must be set before the first async read constructs the shared
  // pool).
  setenv("KCPQ_IO_THREADS", "64", /*overwrite=*/0);
  kcpq::bench::Main();
}
