// Figure 10: comparison of the paper's STD and HEAP with the incremental
// distance-join algorithms of Hjaltason & Samet (EVN and SML traversal;
// BAS is reported separately since the paper found it uncompetitive).
// Four panels: buffer {0, 128 pages} x overlap {0%, 100%}; K = 1..100,000;
// real (Sequoia-like) vs uniform 62,536 points.

#include <cstdio>

#include "bench/bench_util.h"

namespace kcpq {
namespace bench {
namespace {

constexpr size_t kKs[] = {1, 10, 100, 1000, 10000, 100000};

void RunPanel(const char* panel, size_t buffer_pages, double overlap,
              TreeStore& real_store) {
  std::printf(
      "\nFigure 10%s: buffer = %zu pages, overlap = %.0f%%, disk accesses\n",
      panel, buffer_pages, overlap * 100);
  auto store_q = MakeStore(DataKind::kUniform, Scaled(kSequoiaCardinality),
                           overlap, 2009);
  Table table({"K", "STD", "HEAP", "EVN", "SML", "BAS", "SML(maxqueue)"});
  for (const size_t k : kKs) {
    std::vector<std::string> row = {Table::Count(k)};
    for (const CpqAlgorithm algorithm :
         {CpqAlgorithm::kSortedDistances, CpqAlgorithm::kHeap}) {
      CpqOptions options;
      options.algorithm = algorithm;
      options.k = k;
      row.push_back(Table::Count(
          RunCpq(real_store, *store_q, options, buffer_pages)
              .stats.disk_accesses()));
    }
    uint64_t sml_queue = 0;
    for (const HsTraversal traversal :
         {HsTraversal::kEven, HsTraversal::kSimultaneous, HsTraversal::kBasic}) {
      HsOptions options;
      options.traversal = traversal;
      const HsOutcome outcome =
          RunHs(real_store, *store_q, k, options, buffer_pages);
      row.push_back(Table::Count(outcome.stats.disk_accesses()));
      if (traversal == HsTraversal::kSimultaneous) {
        sml_queue = outcome.stats.max_queue_size;
      }
    }
    row.push_back(Table::Count(sml_queue));
    table.AddRow(std::move(row));
  }
  table.Print(stdout);
}

void Main() {
  PrintFigureHeader("Figure 10",
                    "Non-incremental (STD, HEAP) vs incremental (EVN, SML; "
                    "BAS extra) algorithms; R vs uniform 62,536");
  auto real_store =
      MakeStore(DataKind::kSequoiaLike, Scaled(kSequoiaCardinality), 1.0, 77);
  RunPanel("a", 0, 0.0, *real_store);
  RunPanel("b", 128, 0.0, *real_store);
  RunPanel("c", 0, 1.0, *real_store);
  RunPanel("d", 128, 1.0, *real_store);
  std::printf(
      "\nPaper expectation: EVN competitive only for K < 10,000; with no "
      "buffer HEAP and SML lead (near-identical at 0%% overlap); with a "
      "128-page buffer STD is the most efficient. HEAP/STD beat SML by up "
      "to 20%%/50%%.\n");
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() { kcpq::bench::Main(); }
