// Observability overhead guard.
//
// Not a figure of the paper — this harness proves the metrics layer
// (src/obs/) is cheap enough to leave on. One binary, two modes: the same
// uniform 100K x 100K HEAP K = 10 query is timed with the runtime metrics
// switch off (obs::SetEnabled(false): every KCPQ_METRIC_* macro reduces
// to one predicted branch) and on (counters actually increment). The
// relative overhead
//
//   t_on / t_off - 1
//
// must stay under KCPQ_TRACE_MAX_OVERHEAD (default 5%) or the bench exits
// non-zero — CI runs it as a smoke job. Reps are interleaved and each
// mode keeps its minimum, so machine noise inflates both sides equally.
//
// Results land in BENCH_trace.json for machine consumption.

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench/bench_util.h"
#include "obs/metrics.h"

namespace kcpq {
namespace bench {
namespace {

constexpr int kReps = 5;

double MaxOverhead() {
  if (const char* env = std::getenv("KCPQ_TRACE_MAX_OVERHEAD");
      env != nullptr && *env) {
    const double v = std::atof(env);
    if (v > 0.0) return v;
  }
  return 0.05;
}

int Main() {
  PrintFigureHeader("Observability overhead",
                    "metrics-on vs metrics-off query latency");
  std::printf("metrics compiled in: %s\n",
              obs::MetricsCompiledIn() ? "yes" : "no (KCPQ_METRICS=0)");

  auto store_p = MakeStore(DataKind::kUniform, Scaled(100000), 1.0, 42);
  auto store_q = MakeStore(DataKind::kUniform, Scaled(100000), 1.0, 43);
  CpqOptions options;
  options.algorithm = CpqAlgorithm::kHeap;
  options.k = 10;

  // Warm up once per mode (first touch pays allocator + registry setup).
  obs::SetEnabled(false);
  RunCpq(*store_p, *store_q, options, 512);
  obs::SetEnabled(true);
  RunCpq(*store_p, *store_q, options, 512);

  double t_off = 0.0;
  double t_on = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    obs::SetEnabled(false);
    const double off = RunCpq(*store_p, *store_q, options, 512).seconds;
    obs::SetEnabled(true);
    const double on = RunCpq(*store_p, *store_q, options, 512).seconds;
    t_off = rep == 0 ? off : std::min(t_off, off);
    t_on = rep == 0 ? on : std::min(t_on, on);
    std::printf("rep %d: off %.3f ms, on %.3f ms\n", rep + 1, off * 1e3,
                on * 1e3);
  }
  obs::SetEnabled(true);

  const double overhead = t_off > 0.0 ? t_on / t_off - 1.0 : 0.0;
  const double max_overhead = MaxOverhead();
  std::printf("best-of-%d: off %.3f ms, on %.3f ms, overhead %.2f%% "
              "(limit %.0f%%)\n",
              kReps, t_off * 1e3, t_on * 1e3, overhead * 100,
              max_overhead * 100);

  BenchJson json("trace");
  json.AddScalar("seconds_metrics_off", t_off);
  json.AddScalar("seconds_metrics_on", t_on);
  json.AddScalar("overhead", overhead);
  json.AddScalar("max_overhead", max_overhead);
  json.AddScalar("metrics_compiled_in", obs::MetricsCompiledIn() ? 1.0 : 0.0);
  json.Write();

  if (overhead > max_overhead) {
    std::fprintf(stderr,
                 "FAIL: metrics overhead %.2f%% exceeds limit %.0f%%\n",
                 overhead * 100, max_overhead * 100);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() { return kcpq::bench::Main(); }
