// Figure 5: finding a threshold on the overlap factor. Relative cost of
// SIM, STD, HEAP with respect to EXH, for overlap 0%..100%; real
// (Sequoia-like) data joined with random 40K and 80K. 1-CPQ, no buffer.

#include <cstdio>

#include "bench/bench_util.h"

namespace kcpq {
namespace bench {
namespace {

void Main() {
  PrintFigureHeader("Figure 5",
                    "Overlap threshold: cost of SIM/STD/HEAP relative to "
                    "EXH; R vs random 40K/80K, 1-CPQ, no buffer");
  auto real_store =
      MakeStore(DataKind::kSequoiaLike, Scaled(kSequoiaCardinality), 1.0, 77);
  for (const size_t n : {40000, 80000}) {
    std::printf("\nR/%zuK series (percent of EXH cost):\n", n / 1000);
    Table table({"overlap", "EXH(accesses)", "SIM", "STD", "HEAP"});
    for (const double overlap : {0.0, 0.03, 0.06, 0.12, 0.25, 0.50, 1.0}) {
      auto store_q = MakeStore(DataKind::kUniform, Scaled(n), overlap, 2004);
      uint64_t exh = 0;
      std::vector<std::string> row = {Table::Percent(overlap)};
      for (const CpqAlgorithm algorithm :
           {CpqAlgorithm::kExhaustive, CpqAlgorithm::kSimple,
            CpqAlgorithm::kSortedDistances, CpqAlgorithm::kHeap}) {
        CpqOptions options;
        options.algorithm = algorithm;
        options.k = 1;
        const uint64_t accesses =
            RunCpq(*real_store, *store_q, options, 0).stats.disk_accesses();
        if (algorithm == CpqAlgorithm::kExhaustive) {
          exh = accesses;
          row.push_back(Table::Count(accesses));
        } else {
          row.push_back(Table::Percent(static_cast<double>(accesses) /
                                       (exh > 0 ? exh : 1)));
        }
      }
      table.AddRow(std::move(row));
    }
    table.Print(stdout);
  }
  std::printf(
      "\nPaper expectation: for overlap <= ~5%% the non-exhaustive "
      "algorithms are 2-20x faster than EXH (a few percent of its cost); "
      "the advantage shrinks sharply as overlap grows.\n");
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() { kcpq::bench::Main(); }
