// Figure 2: comparison of the tie-treatment strategies T1-T5 in the STD
// and HEAP algorithms. Random 60K/60K data, 1-CPQ, no buffer; cost of each
// strategy reported relative to T1 (= 100%), per overlap setting.

#include <cstdio>

#include "bench/bench_util.h"

namespace kcpq {
namespace bench {
namespace {

constexpr TieCriterion kStrategies[] = {
    TieCriterion::kLargestNormalizedArea, TieCriterion::kSmallestMinMaxDist,
    TieCriterion::kLargestAreaSum, TieCriterion::kSmallestEnclosureWaste,
    TieCriterion::kLargestIntersection};

void RunPanel(const char* panel, CpqAlgorithm algorithm) {
  std::printf("\nFigure 2%s: %s algorithm, relative cost vs T1\n", panel,
              CpqAlgorithmName(algorithm));
  Table table({"overlap", "T1(accesses)", "T1", "T2", "T3", "T4", "T5"});
  const size_t n = Scaled(60000);
  auto store_p = MakeStore(DataKind::kUniform, n, 1.0, 1001);
  for (const double overlap : {0.0, 0.33, 0.50, 0.67, 1.0}) {
    auto store_q = MakeStore(DataKind::kUniform, n, overlap, 2001);
    uint64_t baseline = 0;
    std::vector<std::string> row = {Table::Percent(overlap)};
    std::vector<std::string> cells;
    for (size_t t = 0; t < 5; ++t) {
      CpqOptions options;
      options.algorithm = algorithm;
      options.k = 1;
      options.tie_chain = {kStrategies[t]};
      const QueryOutcome outcome = RunCpq(*store_p, *store_q, options, 0);
      const uint64_t accesses = outcome.stats.disk_accesses();
      if (t == 0) {
        baseline = accesses;
        row.push_back(Table::Count(accesses));
      }
      cells.push_back(Table::Percent(
          baseline > 0 ? static_cast<double>(accesses) / baseline : 1.0));
    }
    for (auto& c : cells) row.push_back(std::move(c));
    table.AddRow(std::move(row));
  }
  table.Print(stdout);
}

void Main() {
  PrintFigureHeader("Figure 2",
                    "Tie-treatment strategies T1-T5 (STD, HEAP); random "
                    "60K/60K, 1-CPQ, no buffer");
  RunPanel("a", CpqAlgorithm::kSortedDistances);
  RunPanel("b", CpqAlgorithm::kHeap);
  std::printf(
      "\nPaper expectation: T1 wins or ties everywhere; alternatives up to "
      "~50%% worse on overlapping data; all equivalent at 0%% overlap.\n");
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() { kcpq::bench::Main(); }
