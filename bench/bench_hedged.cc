// Hedged-read benchmark: tail latency of K-CPQ queries over a 2-replica
// mirror whose simulated disks have a heavy-tailed read latency
// (storage/latency_storage.h: ~100 us typical, a few percent of reads
// stall for 20 ms — the "one slow disk in the array" regime hedging
// exists for).
//
// Not a figure of the paper — this harness measures the replication layer
// beneath the reproduction (storage/mirrored_storage.h,
// docs/robustness.md). The same batch of queries runs three times over
// identical replicated stacks, varying only the hedge policy:
//
//   off       failover only; a slow primary read is paid in full
//   static    a backup read is issued after a fixed 300 us
//   adaptive  the delay tracks EWMA(latency) + 4 * EWMA(|deviation|)
//
// The replicas draw their slow-read lotteries from different seeds
// (storage/stack.h offsets each replica's latency seed), so when the
// primary stalls the mirror copy is almost surely fast — the hedge turns
// a 20 ms stall into ~delay + 100 us. The paper's metric is untouched:
// per-query disk accesses are identical across all three modes, and the
// harness checks pairs and counts.
//
// Expectation: p99 per-query latency improves by >= 2x with hedging
// enabled; set HEDGED_MIN_P99_SPEEDUP (e.g. 2) to gate the exit status in
// CI. Results also land in BENCH_hedged.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "exec/batch.h"
#include "storage/stack.h"

namespace kcpq {
namespace bench {
namespace {

constexpr size_t kTreeSize = 20000;
constexpr size_t kQueries = 64;
constexpr size_t kWorkers = 4;
// Zero-capacity buffers (the paper's setting): every node read reaches the
// mirror, so per-query disk accesses are interleaving-independent and the
// hedging layer sees the full read stream.
constexpr size_t kBufferPages = 0;

LatencyProfile HeavyTail() {
  LatencyProfile latency;
  latency.read_latency = std::chrono::microseconds(100);
  latency.slow_probability = 0.02;
  latency.slow_latency = std::chrono::microseconds(20000);
  latency.seed = 41;
  return latency;
}

HedgePolicy PolicyFor(HedgeMode mode) {
  HedgePolicy hedge;
  hedge.mode = mode;
  hedge.static_delay = std::chrono::microseconds(300);
  hedge.min_samples = 16;
  return hedge;
}

// One 2-replica stack per tree, built through the mirror (identical
// replicas). Construction uses a big buffer so it runs at memory speed —
// only the measured queries pay the simulated latency.
std::unique_ptr<ReplicatedMemoryStack> BuildStack(
    PageId* meta, size_t n, uint64_t seed, HedgeMode mode) {
  ReplicaStackConfig config;
  config.replicas = 2;
  config.latency = HeavyTail();
  config.mirrored.hedge = PolicyFor(mode);
  auto stack = std::make_unique<ReplicatedMemoryStack>(config);
  BufferManager buffer(stack->top(), 8192);
  auto created = RStarTree::Create(&buffer);
  KCPQ_CHECK_OK(created.status());
  std::unique_ptr<RStarTree> tree = std::move(created).value();
  const std::vector<Point> points =
      GenerateUniform(n, UnitWorkspace(), seed);
  for (size_t i = 0; i < points.size(); ++i) {
    KCPQ_CHECK_OK(tree->Insert(points[i], i));
  }
  KCPQ_CHECK_OK(tree->Flush());
  *meta = tree->meta_page();
  return stack;
}

std::vector<BatchQuery> MakeBatch() {
  std::vector<BatchQuery> batch(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    batch[i].options.algorithm = CpqAlgorithm::kHeap;
    batch[i].options.k = (i % 3 == 0) ? 1 : (i % 3 == 1) ? 10 : 100;
  }
  return batch;
}

struct ModeOutcome {
  std::vector<BatchQueryResult> results;
  double makespan = 0.0;
  double p50 = 0.0;
  double p99 = 0.0;
  uint64_t disk_accesses = 0;
  MirroredStats mirror;  // both trees' mirrors, summed
};

ModeOutcome RunMode(HedgeMode mode) {
  PageId meta_p = kInvalidPageId, meta_q = kInvalidPageId;
  auto stack_p = BuildStack(&meta_p, Scaled(kTreeSize), 51, mode);
  auto stack_q = BuildStack(&meta_q, Scaled(kTreeSize), 52, mode);

  BufferManager bp(stack_p->top(), kBufferPages, /*shards=*/64,
                   [] { return MakeLruPolicy(); });
  BufferManager bq(stack_q->top(), kBufferPages, /*shards=*/64,
                   [] { return MakeLruPolicy(); });
  auto tp = RStarTree::Open(&bp, meta_p);
  KCPQ_CHECK_OK(tp.status());
  auto tq = RStarTree::Open(&bq, meta_q);
  KCPQ_CHECK_OK(tq.status());

  BatchOptions options;
  options.threads = kWorkers;
  ModeOutcome out;
  Timer timer;
  out.results =
      BatchKClosestPairs(*tp.value(), *tq.value(), MakeBatch(), options);
  out.makespan = timer.ElapsedSeconds();

  std::vector<double> latencies;
  for (const BatchQueryResult& r : out.results) {
    KCPQ_CHECK_OK(r.status);
    out.disk_accesses += r.stats.disk_accesses();
    if (r.seconds >= 0.0) latencies.push_back(r.seconds);
  }
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty()) {
    out.p50 = latencies[latencies.size() / 2];
    out.p99 = latencies[(latencies.size() * 99) / 100];
  }
  for (ReplicatedMemoryStack* s : {stack_p.get(), stack_q.get()}) {
    s->mirrored()->DrainHedges();
    const MirroredStats stats = s->mirrored()->mirrored_stats();
    out.mirror.hedges_issued += stats.hedges_issued;
    out.mirror.hedge_wins += stats.hedge_wins;
    out.mirror.hedge_wasted += stats.hedge_wasted;
  }
  return out;
}

bool SameWork(const ModeOutcome& a, const ModeOutcome& b) {
  if (a.results.size() != b.results.size()) return false;
  for (size_t i = 0; i < a.results.size(); ++i) {
    const BatchQueryResult& ra = a.results[i];
    const BatchQueryResult& rb = b.results[i];
    if (ra.stats.disk_accesses() != rb.stats.disk_accesses()) return false;
    if (ra.pairs.size() != rb.pairs.size()) return false;
    for (size_t j = 0; j < ra.pairs.size(); ++j) {
      if (ra.pairs[j].distance != rb.pairs[j].distance) return false;
      if (ra.pairs[j].p_id != rb.pairs[j].p_id) return false;
      if (ra.pairs[j].q_id != rb.pairs[j].q_id) return false;
    }
  }
  return true;
}

void Main() {
  PrintFigureHeader("Hedged",
                    "K-CPQ tail latency over a 2-replica mirror with "
                    "heavy-tailed disk latency: hedging off/static/adaptive");
  const LatencyProfile latency = HeavyTail();
  std::printf(
      "uniform %zu x %zu, %zu queries (K in {1, 10, 100}), %zu workers, "
      "read latency %lld us with %.0f%% slow reads of %lld us\n",
      Scaled(kTreeSize), Scaled(kTreeSize), kQueries, kWorkers,
      static_cast<long long>(latency.read_latency.count()),
      latency.slow_probability * 100.0,
      static_cast<long long>(latency.slow_latency.count()));
  BenchJson json("hedged");

  const ModeOutcome off = RunMode(HedgeMode::kOff);
  const ModeOutcome fixed = RunMode(HedgeMode::kStatic);
  const ModeOutcome adaptive = RunMode(HedgeMode::kAdaptive);

  Table table({"hedging", "makespan s", "p50 ms", "p99 ms", "hedges",
               "wins", "wasted", "disk accesses"});
  const auto add = [&](const char* name, const ModeOutcome& o) {
    table.AddRow(
        {name, Table::Num(o.makespan, 3), Table::Num(o.p50 * 1e3, 1),
         Table::Num(o.p99 * 1e3, 1),
         Table::Count(static_cast<long long>(o.mirror.hedges_issued)),
         Table::Count(static_cast<long long>(o.mirror.hedge_wins)),
         Table::Count(static_cast<long long>(o.mirror.hedge_wasted)),
         Table::Count(static_cast<long long>(o.disk_accesses))});
  };
  add("off", off);
  add("static", fixed);
  add("adaptive", adaptive);
  table.Print(stdout);
  json.AddTable("modes", table);

  const bool identical = SameWork(off, fixed) && SameWork(off, adaptive);
  const double speedup_static = off.p99 / fixed.p99;
  const double speedup_adaptive = off.p99 / adaptive.p99;
  const double speedup = std::max(speedup_static, speedup_adaptive);
  std::printf("\np99 speedup vs unhedged: static %.2fx, adaptive %.2fx\n",
              speedup_static, speedup_adaptive);
  std::printf(
      "identical pairs and per-query disk accesses: %s (hedging must not "
      "perturb results or the paper metric)\n",
      identical ? "yes" : "NO — BUG");
  std::printf("Expectation: >= 2x p99 improvement with hedging on.\n");
  json.AddScalar("p99_off_ms", off.p99 * 1e3);
  json.AddScalar("p99_static_ms", fixed.p99 * 1e3);
  json.AddScalar("p99_adaptive_ms", adaptive.p99 * 1e3);
  json.AddScalar("p50_off_ms", off.p50 * 1e3);
  json.AddScalar("p50_static_ms", fixed.p50 * 1e3);
  json.AddScalar("p50_adaptive_ms", adaptive.p50 * 1e3);
  json.AddScalar("p99_speedup_static", speedup_static);
  json.AddScalar("p99_speedup_adaptive", speedup_adaptive);
  json.AddScalar("identical_results", identical ? 1.0 : 0.0);
  json.Write();

  if (!identical) std::exit(1);
  if (const char* gate = std::getenv("HEDGED_MIN_P99_SPEEDUP")) {
    const double min_speedup = std::atof(gate);
    if (speedup < min_speedup) {
      std::fprintf(stderr,
                   "FAIL: p99 speedup %.2fx below HEDGED_MIN_P99_SPEEDUP=%s\n",
                   speedup, gate);
      std::exit(1);
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace kcpq

int main() {
  // Hedged reads run on the shared I/O pool; give it enough workers that
  // backup reads never queue behind primaries. Must be set before the
  // first read constructs the pool.
  setenv("KCPQ_IO_THREADS", "32", /*overwrite=*/0);
  kcpq::bench::Main();
}
