// Renders a closest-pair query as an SVG: the two data sets, their R*-tree
// leaf MBRs, and the K closest pairs as connecting segments. Open the
// output in any browser to *see* why clustered data keeps node rectangles
// disjoint (the mechanism behind the paper's Section 4.3.2 analysis).
//
//   $ ./build/examples/visualize [out.svg]

#include <cstdio>
#include <string>

#include "buffer/buffer_manager.h"
#include "cpq/cpq.h"
#include "datagen/datagen.h"
#include "rtree/rtree.h"
#include "storage/memory_storage.h"

namespace {

constexpr double kCanvas = 900.0;

double X(double v) { return 20.0 + v * (kCanvas - 40.0); }
double Y(double v) { return kCanvas - 20.0 - v * (kCanvas - 40.0); }

void AppendRect(std::string* svg, const kcpq::Rect& r, const char* stroke,
                double width, double opacity) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "<rect x='%.1f' y='%.1f' width='%.1f' height='%.1f' "
                "fill='none' stroke='%s' stroke-width='%.1f' "
                "opacity='%.2f'/>\n",
                X(r.lo[0]), Y(r.hi[1]), X(r.hi[0]) - X(r.lo[0]),
                Y(r.lo[1]) - Y(r.hi[1]), stroke, width, opacity);
  *svg += buf;
}

void AppendPoint(std::string* svg, const kcpq::Point& p, const char* fill) {
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "<circle cx='%.1f' cy='%.1f' r='1.2' fill='%s'/>\n",
                X(p.x()), Y(p.y()), fill);
  *svg += buf;
}

// Draws every leaf MBR of the tree.
kcpq::Status AppendLeafMbrs(std::string* svg, const kcpq::RStarTree& tree,
                            const char* stroke) {
  return tree.ScanLeaves([&](const kcpq::Node& leaf) {
    AppendRect(svg, leaf.ComputeMbr(), stroke, 0.8, 0.5);
    return true;
  });
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kcpq;
  const std::string out_path = argc > 1 ? argv[1] : "kcpq_visualization.svg";

  MemoryStorageManager storage_p, storage_q;
  BufferManager buffer_p(&storage_p, 0), buffer_q(&storage_q, 0);
  auto tree_p = RStarTree::Create(&buffer_p).value();
  auto tree_q = RStarTree::Create(&buffer_q).value();

  const auto sites = GenerateSequoiaLike(3000, UnitWorkspace(), 5);
  const auto towns = GenerateUniform(3000, UnitWorkspace(), 6);
  for (size_t i = 0; i < sites.size(); ++i) {
    KCPQ_CHECK_OK(tree_p->Insert(sites[i], i));
  }
  for (size_t i = 0; i < towns.size(); ++i) {
    KCPQ_CHECK_OK(tree_q->Insert(towns[i], i));
  }

  CpqOptions options;
  options.algorithm = CpqAlgorithm::kHeap;
  options.k = 25;
  auto pairs = KClosestPairs(*tree_p, *tree_q, options);
  KCPQ_CHECK_OK(pairs.status());

  std::string svg;
  char head[256];
  std::snprintf(head, sizeof(head),
                "<svg xmlns='http://www.w3.org/2000/svg' width='%.0f' "
                "height='%.0f' style='background:#fff'>\n",
                kCanvas, kCanvas);
  svg += head;
  for (const Point& p : sites) AppendPoint(&svg, p, "#1f77b4");
  for (const Point& p : towns) AppendPoint(&svg, p, "#9b9b9b");
  KCPQ_CHECK_OK(AppendLeafMbrs(&svg, *tree_p, "#1f77b4"));
  KCPQ_CHECK_OK(AppendLeafMbrs(&svg, *tree_q, "#9b9b9b"));
  for (const PairResult& pr : pairs.value()) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "<line x1='%.1f' y1='%.1f' x2='%.1f' y2='%.1f' "
                  "stroke='#d62728' stroke-width='2'/>\n"
                  "<circle cx='%.1f' cy='%.1f' r='4' fill='none' "
                  "stroke='#d62728' stroke-width='1.5'/>\n",
                  X(pr.p.x()), Y(pr.p.y()), X(pr.q.x()), Y(pr.q.y()),
                  X(pr.p.x()), Y(pr.p.y()));
    svg += line;
  }
  svg += "</svg>\n";

  std::FILE* f = std::fopen(out_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fwrite(svg.data(), 1, svg.size(), f);
  std::fclose(f);
  std::printf("wrote %s: %zu site points (blue, clustered), %zu town points "
              "(grey, uniform),\n  their leaf MBRs, and the %zu closest "
              "pairs (red).\n",
              out_path.c_str(), sites.size(), towns.size(),
              pairs.value().size());
  return 0;
}
