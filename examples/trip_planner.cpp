// Multi-way closest tuples (the paper's Section 6 future-work query): plan
// day trips that bundle a hotel, a beach, and a restaurant that are all
// close to each other — the 3-way clique version of the closest pair.
// Also shows the query planner choosing a 2-way plan and the epsilon join.

#include <cstdio>

#include "buffer/buffer_manager.h"
#include "cpq/distance_join.h"
#include "cpq/multiway.h"
#include "cpq/planner.h"
#include "datagen/datagen.h"
#include "rtree/rtree.h"
#include "storage/memory_storage.h"

namespace {

struct Indexed {
  kcpq::MemoryStorageManager storage;
  std::unique_ptr<kcpq::BufferManager> buffer;
  std::unique_ptr<kcpq::RStarTree> tree;

  void Build(const std::vector<kcpq::Point>& points) {
    buffer = std::make_unique<kcpq::BufferManager>(&storage, 64);
    tree = kcpq::RStarTree::Create(buffer.get()).value();
    for (size_t i = 0; i < points.size(); ++i) {
      KCPQ_CHECK_OK(tree->Insert(points[i], i));
    }
    KCPQ_CHECK_OK(tree->Flush());
  }
};

}  // namespace

int main() {
  using namespace kcpq;

  Indexed hotels, beaches, restaurants;
  hotels.Build(GenerateSequoiaLike(5000, UnitWorkspace(), 11));
  beaches.Build(GenerateUniform(800, UnitWorkspace(), 12));
  restaurants.Build(GenerateSequoiaLike(7000, UnitWorkspace(), 13));

  // --- 3-way clique: hotel, beach and restaurant all pairwise close -------
  const std::vector<MultiwayEdge> clique = {{0, 1}, {0, 2}, {1, 2}};
  MultiwayOptions options;
  options.k = 5;
  CpqStats stats;
  auto trips = MultiwayKClosestTuples(
      {hotels.tree.get(), beaches.tree.get(), restaurants.tree.get()}, clique,
      options, &stats);
  KCPQ_CHECK_OK(trips.status());
  std::printf("Top-%zu day-trip bundles (hotel + beach + restaurant):\n",
              trips.value().size());
  for (size_t i = 0; i < trips.value().size(); ++i) {
    const TupleResult& t = trips.value()[i];
    std::printf("  %zu. hotel #%llu, beach #%llu, restaurant #%llu — total "
                "walking %.4f\n",
                i + 1, (unsigned long long)t.ids[0],
                (unsigned long long)t.ids[1], (unsigned long long)t.ids[2],
                t.aggregate_distance);
  }
  std::printf("cost: %llu disk accesses over the three trees, tuple heap "
              "peaked at %llu\n\n",
              (unsigned long long)stats.disk_accesses(),
              (unsigned long long)stats.max_heap_size);

  // --- Let the planner pick the 2-way algorithm ---------------------------
  auto plan = PlanKClosestPairs(*hotels.tree, *beaches.tree, 3,
                                /*buffer_pages_total=*/128);
  KCPQ_CHECK_OK(plan.status());
  std::printf("Planner for hotels-vs-beaches (B=128): %s, overlap ~%.0f%%, "
              "~%.0f accesses predicted\n  rationale: %s\n",
              CpqAlgorithmName(plan.value().options.algorithm),
              plan.value().estimated_overlap * 100,
              plan.value().estimated_disk_accesses,
              plan.value().rationale.c_str());
  auto pairs = KClosestPairs(*hotels.tree, *beaches.tree,
                             plan.value().options, &stats);
  KCPQ_CHECK_OK(pairs.status());
  std::printf("  executed: %llu actual accesses, best pair at %.4f\n\n",
              (unsigned long long)stats.disk_accesses(),
              pairs.value().front().distance);

  // --- Epsilon join: beachfront restaurants -------------------------------
  auto beachfront =
      DistanceRangeJoin(*restaurants.tree, *beaches.tree, 0.004, {}, &stats);
  KCPQ_CHECK_OK(beachfront.status());
  std::printf("Restaurants within 0.004 of a beach: %zu pairs "
              "(%llu disk accesses)\n",
              beachfront.value().size(),
              (unsigned long long)stats.disk_accesses());
  return 0;
}
