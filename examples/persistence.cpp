// Persistence: build an R*-tree on a real file, close everything, reopen
// the file later and query it — the workflow of a long-lived spatial
// database. Also demonstrates the effect of the LRU buffer on a warm
// second query.

#include <cstdio>
#include <string>

#include "buffer/buffer_manager.h"
#include "cpq/cpq.h"
#include "datagen/datagen.h"
#include "rtree/rtree.h"
#include "storage/file_storage.h"

int main() {
  using namespace kcpq;
  const std::string path_p = "/tmp/kcpq_example_sites.db";
  const std::string path_q = "/tmp/kcpq_example_towns.db";

  PageId meta_p, meta_q;
  {
    // --- Session 1: ingest ----------------------------------------------
    auto storage_p = FileStorageManager::Create(path_p).value();
    auto storage_q = FileStorageManager::Create(path_q).value();
    BufferManager buffer_p(storage_p.get(), 256);
    BufferManager buffer_q(storage_q.get(), 256);
    auto tree_p = RStarTree::Create(&buffer_p).value();
    auto tree_q = RStarTree::Create(&buffer_q).value();

    const auto sites = GenerateSequoiaLike(20000, UnitWorkspace(), 7);
    const auto towns = GenerateUniform(5000, UnitWorkspace(), 8);
    for (size_t i = 0; i < sites.size(); ++i) {
      KCPQ_CHECK_OK(tree_p->Insert(sites[i], i));
    }
    for (size_t i = 0; i < towns.size(); ++i) {
      KCPQ_CHECK_OK(tree_q->Insert(towns[i], i));
    }
    KCPQ_CHECK_OK(tree_p->Flush());
    KCPQ_CHECK_OK(tree_q->Flush());
    meta_p = tree_p->meta_page();
    meta_q = tree_q->meta_page();
    std::printf("session 1: ingested %llu + %llu points into %s / %s\n",
                (unsigned long long)tree_p->size(),
                (unsigned long long)tree_q->size(), path_p.c_str(),
                path_q.c_str());
  }  // everything closed; only the files remain

  {
    // --- Session 2: reopen and query -------------------------------------
    auto storage_p = FileStorageManager::Open(path_p).value();
    auto storage_q = FileStorageManager::Open(path_q).value();
    BufferManager buffer_p(storage_p.get(), 512);
    BufferManager buffer_q(storage_q.get(), 512);
    auto tree_p = RStarTree::Open(&buffer_p, meta_p).value();
    auto tree_q = RStarTree::Open(&buffer_q, meta_q).value();
    KCPQ_CHECK_OK(tree_p->Validate());
    KCPQ_CHECK_OK(tree_q->Validate());
    std::printf("session 2: reopened trees (%llu and %llu points), "
                "structure validated\n",
                (unsigned long long)tree_p->size(),
                (unsigned long long)tree_q->size());

    CpqOptions options;
    options.algorithm = CpqAlgorithm::kSortedDistances;
    options.k = 3;
    for (const char* label : {"cold", "warm"}) {
      CpqStats stats;
      auto result = KClosestPairs(*tree_p, *tree_q, options, &stats);
      KCPQ_CHECK_OK(result.status());
      std::printf("  %s run: best distance %.6f, %llu disk accesses "
                  "(buffer hits P+Q: %llu)\n",
                  label, result.value().front().distance,
                  (unsigned long long)stats.disk_accesses(),
                  (unsigned long long)(buffer_p.stats().hits +
                                       buffer_q.stats().hits));
    }
  }

  std::remove(path_p.c_str());
  std::remove(path_q.c_str());
  return 0;
}
