// Incremental exploration with the Hjaltason-Samet distance join: stream
// closest pairs one at a time — without fixing K in advance — and stop on
// a data-dependent condition (here: all pairs closer than a distance
// threshold, plus a "stop after budget" guard). This is the workload shape
// where incremental algorithms shine, complementing the paper's K-CPQ.

#include <cstdio>

#include "buffer/buffer_manager.h"
#include "datagen/datagen.h"
#include "hs/hs.h"
#include "rtree/rtree.h"
#include "storage/memory_storage.h"

int main() {
  using namespace kcpq;

  MemoryStorageManager storage_p, storage_q;
  BufferManager buffer_p(&storage_p, 64), buffer_q(&storage_q, 64);
  auto tree_p = RStarTree::Create(&buffer_p).value();
  auto tree_q = RStarTree::Create(&buffer_q).value();

  const auto hydrants = GenerateUniform(15000, UnitWorkspace(), 31);
  const auto buildings = GenerateSequoiaLike(15000, UnitWorkspace(), 32);
  for (size_t i = 0; i < hydrants.size(); ++i) {
    KCPQ_CHECK_OK(tree_p->Insert(hydrants[i], i));
  }
  for (size_t i = 0; i < buildings.size(); ++i) {
    KCPQ_CHECK_OK(tree_q->Insert(buildings[i], i));
  }

  // "Report hydrant/building pairs from closest outward until pairs are
  // farther than 0.2% of the map apart — we don't know how many that is."
  constexpr double kThreshold = 0.002;
  constexpr size_t kBudget = 1000000;

  HsOptions options;
  options.traversal = HsTraversal::kSimultaneous;
  IncrementalDistanceJoin join(*tree_p, *tree_q, options);

  size_t reported = 0;
  double last = 0.0;
  while (reported < kBudget) {
    auto next = join.Next();
    KCPQ_CHECK_OK(next.status());
    if (!next.value().has_value()) break;           // cross product done
    if (next.value()->distance > kThreshold) break;  // data-driven stop
    last = next.value()->distance;
    if (reported < 5) {
      std::printf("pair %zu: hydrant #%llu <-> building #%llu at %.6f\n",
                  reported + 1, (unsigned long long)next.value()->p_id,
                  (unsigned long long)next.value()->q_id,
                  next.value()->distance);
    }
    ++reported;
  }

  const HsStats& stats = join.stats();
  std::printf("...\nstreamed %zu pairs below %.3f (last: %.6f)\n", reported,
              kThreshold, last);
  std::printf("cost: %llu disk accesses, queue peaked at %llu items "
              "(%llu pushed)\n",
              (unsigned long long)stats.disk_accesses(),
              (unsigned long long)stats.max_queue_size,
              (unsigned long long)stats.items_pushed);
  std::printf("\nThe non-incremental algorithms of the paper need K up "
              "front; the trade-off is queue size — compare the peak above "
              "with bench_fig10_incremental's HEAP column.\n");
  return 0;
}
