// Quickstart: index two point sets in R*-trees and ask for the K closest
// pairs between them.
//
//   $ ./build/examples/quickstart
//
// Walks through the whole public API surface a first-time user needs:
// storage -> buffer -> tree -> query -> stats.

#include <cstdio>

#include "buffer/buffer_manager.h"
#include "cpq/cpq.h"
#include "datagen/datagen.h"
#include "rtree/rtree.h"
#include "storage/memory_storage.h"

int main() {
  using namespace kcpq;

  // 1. Each data set lives in its own page store; the buffer manager sits
  //    between the tree and the store and counts disk accesses. Capacity 0
  //    means "no cache": every node access is a disk access.
  MemoryStorageManager storage_p, storage_q;
  BufferManager buffer_p(&storage_p, /*capacity_pages=*/0);
  BufferManager buffer_q(&storage_q, /*capacity_pages=*/0);

  // 2. Create the R*-trees (1 KiB pages: fanout M = 21, min fill m = 7).
  auto tree_p = RStarTree::Create(&buffer_p).value();
  auto tree_q = RStarTree::Create(&buffer_q).value();

  // 3. Insert some points. P: clustered "sites"; Q: uniform "queries".
  const auto sites = GenerateSequoiaLike(10000, UnitWorkspace(), /*seed=*/1);
  const auto probes = GenerateUniform(10000, UnitWorkspace(), /*seed=*/2);
  for (size_t i = 0; i < sites.size(); ++i) {
    KCPQ_CHECK_OK(tree_p->Insert(sites[i], /*record_id=*/i));
  }
  for (size_t i = 0; i < probes.size(); ++i) {
    KCPQ_CHECK_OK(tree_q->Insert(probes[i], /*record_id=*/i));
  }
  std::printf("built trees: |P| = %llu (height %d), |Q| = %llu (height %d)\n",
              (unsigned long long)tree_p->size(), tree_p->height(),
              (unsigned long long)tree_q->size(), tree_q->height());

  // 4. Run a 5-closest-pairs query with the HEAP algorithm.
  CpqOptions options;
  options.algorithm = CpqAlgorithm::kHeap;
  options.k = 5;
  CpqStats stats;
  auto result = KClosestPairs(*tree_p, *tree_q, options, &stats);
  KCPQ_CHECK_OK(result.status());

  std::printf("\n%zu closest pairs (ascending):\n", result.value().size());
  for (const PairResult& pair : result.value()) {
    std::printf("  site #%llu (%.4f, %.4f)  <->  probe #%llu (%.4f, %.4f)"
                "  distance %.6f\n",
                (unsigned long long)pair.p_id, pair.p.x(), pair.p.y(),
                (unsigned long long)pair.q_id, pair.q.x(), pair.q.y(),
                pair.distance);
  }

  // 5. The cost metric of the paper: R-tree node disk accesses.
  std::printf("\nquery cost: %llu disk accesses (%llu on P, %llu on Q), "
              "%llu point distances computed\n",
              (unsigned long long)stats.disk_accesses(),
              (unsigned long long)stats.disk_accesses_p,
              (unsigned long long)stats.disk_accesses_q,
              (unsigned long long)stats.point_distance_computations);
  return 0;
}
