// The paper's motivating scenario (Section 1): one data set holds the
// archeological sites of a region, the other its holiday resorts. A K-CPQ
// finds the K site/resort pairs at the smallest distances — the pairs a
// tourist authority would advertise. This example also contrasts all four
// practical algorithms on the same query, reproducing in miniature the
// comparisons of the paper's Section 5, and shows Self-CPQ and Semi-CPQ.

#include <cstdio>

#include "buffer/buffer_manager.h"
#include "common/table.h"
#include "cpq/cpq.h"
#include "datagen/datagen.h"
#include "rtree/rtree.h"
#include "storage/memory_storage.h"

namespace {

struct Indexed {
  kcpq::MemoryStorageManager storage;
  std::unique_ptr<kcpq::BufferManager> buffer;
  std::unique_ptr<kcpq::RStarTree> tree;
};

void Build(Indexed* out, const std::vector<kcpq::Point>& points,
           size_t buffer_pages) {
  out->buffer =
      std::make_unique<kcpq::BufferManager>(&out->storage, buffer_pages);
  out->tree = kcpq::RStarTree::Create(out->buffer.get()).value();
  for (size_t i = 0; i < points.size(); ++i) {
    KCPQ_CHECK_OK(out->tree->Insert(points[i], i));
  }
  KCPQ_CHECK_OK(out->tree->Flush());
}

}  // namespace

int main() {
  using namespace kcpq;

  // Archeological sites cluster around ancient settlements; resorts
  // cluster along the same coastline, so the workspaces fully overlap —
  // the expensive case in the paper's analysis.
  const auto sites = GenerateSequoiaLike(30000, UnitWorkspace(), 2024);
  const auto resorts = GenerateSequoiaLike(8000, UnitWorkspace(), 4048);

  Indexed site_index, resort_index;
  Build(&site_index, sites, /*buffer_pages=*/32);
  Build(&resort_index, resorts, /*buffer_pages=*/32);

  // --- The advertising query: 10 best site/resort pairs -------------------
  CpqOptions options;
  options.algorithm = CpqAlgorithm::kHeap;
  options.k = 10;
  auto pairs = KClosestPairs(*site_index.tree, *resort_index.tree, options);
  KCPQ_CHECK_OK(pairs.status());
  std::printf("Top-%zu site/resort pairs to advertise:\n",
              pairs.value().size());
  for (size_t i = 0; i < pairs.value().size(); ++i) {
    const PairResult& pr = pairs.value()[i];
    std::printf("  %2zu. site #%llu near resort #%llu — %.2f km apart\n",
                i + 1, (unsigned long long)pr.p_id,
                (unsigned long long)pr.q_id, pr.distance * 500.0);
  }

  // --- Algorithm shoot-out on the same query ------------------------------
  std::printf("\nAlgorithm comparison on this query (cold cache each run):\n");
  Table table({"algorithm", "disk accesses", "node pairs", "max heap"});
  for (const CpqAlgorithm algorithm :
       {CpqAlgorithm::kExhaustive, CpqAlgorithm::kSimple,
        CpqAlgorithm::kSortedDistances, CpqAlgorithm::kHeap}) {
    KCPQ_CHECK_OK(site_index.buffer->FlushAndClear());
    KCPQ_CHECK_OK(resort_index.buffer->FlushAndClear());
    CpqOptions run;
    run.algorithm = algorithm;
    run.k = 10;
    CpqStats stats;
    KCPQ_CHECK_OK(
        KClosestPairs(*site_index.tree, *resort_index.tree, run, &stats)
            .status());
    table.AddRow({CpqAlgorithmName(algorithm),
                  Table::Count(stats.disk_accesses()),
                  Table::Count(stats.node_pairs_processed),
                  Table::Count(stats.max_heap_size)});
  }
  table.Print(stdout);

  // --- Self-CPQ: which resorts crowd each other? --------------------------
  CpqOptions self_options;
  self_options.k = 3;
  auto crowded = SelfKClosestPairs(*resort_index.tree, self_options);
  KCPQ_CHECK_OK(crowded.status());
  std::printf("\n3 most-crowded resort pairs (Self-CPQ):\n");
  for (const PairResult& pr : crowded.value()) {
    std::printf("  resorts #%llu and #%llu — %.2f km apart\n",
                (unsigned long long)pr.p_id, (unsigned long long)pr.q_id,
                pr.distance * 500.0);
  }

  // --- Semi-CPQ: every site's nearest resort ------------------------------
  auto coverage = SemiClosestPairs(*site_index.tree, *resort_index.tree);
  KCPQ_CHECK_OK(coverage.status());
  std::printf("\nSemi-CPQ coverage: %zu sites mapped to their nearest "
              "resort;\n  best served: site #%llu (%.2f km)\n"
              "  worst served: site #%llu (%.2f km)\n",
              coverage.value().size(),
              (unsigned long long)coverage.value().front().p_id,
              coverage.value().front().distance * 500.0,
              (unsigned long long)coverage.value().back().p_id,
              coverage.value().back().distance * 500.0);
  return 0;
}
